#include "core/server.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <functional>
#include <map>
#include <mutex>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/structural_join.h"
#include "storage/mmap_bundle.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"

namespace xcrypt {

int64_t ServerResponse::TotalBytes() const {
  int64_t total = static_cast<int64_t>(skeleton_xml.size());
  for (const EncryptedBlock& b : blocks) total += b.CiphertextBytes();
  total += static_cast<int64_t>(cached_ids.size()) * 4;  // id-only stubs
  return total;
}

namespace {

bool IsRootInterval(const Interval& iv) {
  return iv.min == 0.0 && iv.max == 1.0;
}

/// Strict non-negative integer parse of a block-marker id attribute.
/// Returns -1 on anything malformed (sign, trailing junk, overflow, empty)
/// instead of std::atoi's silent 0.
int ParseBlockId(const std::string& text) {
  int value = -1;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || value < 0) return -1;
  return value;
}

/// Candidate count from which the predicate batch fans its re-chains out
/// over the shared pool.
constexpr int kBatchParallelCutoff = 16;

/// Ship-root count from which response marking fans out.
constexpr size_t kAssembleParallelCutoff = 64;

}  // namespace

ServerEngine::ServerEngine(const EncryptedDatabase* db, const Metadata* meta) {
  db_ = db;
  meta_ = meta;
  BuildIndexes();
  ready_.store(true, std::memory_order_release);
}

ServerEngine::ServerEngine(const MmapBundleReader* mapped) : mapped_(mapped) {}

void ServerEngine::BuildIndexes() const {
  universe_ = meta_->dsi_table.AllIntervals();
  forest_ = LaminarForest::Build(universe_);

  // Block representatives are subtree-root intervals, hence laminar too.
  // Duplicate representatives keep the first block id in table order (the
  // tie the scan-based lookup used to break the same way).
  std::vector<Interval> reps;
  reps.reserve(meta_->block_table.entries().size());
  for (const auto& [id, rep] : meta_->block_table.entries()) {
    reps.push_back(rep);
  }
  block_forest_ = LaminarForest::Build(std::move(reps));
  block_of_forest_node_.assign(block_forest_.size(), -1);
  for (const auto& [id, rep] : meta_->block_table.entries()) {
    const int node = block_forest_.Find(rep);
    if (node != LaminarForest::kNone && block_of_forest_node_[node] < 0) {
      block_of_forest_node_[node] = id;
    }
  }
}

Status ServerEngine::EnsureReady() const {
  if (ready_.load(std::memory_order_acquire)) return Status::Ok();
  std::lock_guard<std::mutex> lock(ready_mu_);
  if (ready_.load(std::memory_order_relaxed)) return Status::Ok();
  // Only a mapped engine can be un-ready: fault the index sections in,
  // point the read surface at them, and build the forests. On failure
  // (corrupt section) nothing is published and the next call retries.
  XCRYPT_RETURN_NOT_OK(mapped_->EnsureResident());
  db_ = &mapped_->database();
  meta_ = &mapped_->metadata();
  BuildIndexes();
  ready_.store(true, std::memory_order_release);
  return Status::Ok();
}

size_t ServerEngine::BlockCount() const {
  return mapped_ != nullptr ? mapped_->BlockCount() : db_->blocks.size();
}

uint32_t ServerEngine::BlockGenerationOf(size_t i) const {
  return mapped_ != nullptr ? mapped_->BlockGeneration(i)
                            : db_->blocks[i].generation;
}

bool ServerEngine::BlockTombstoned(size_t i) const {
  return mapped_ != nullptr ? mapped_->BlockPayload(i).empty()
                            : db_->blocks[i].ciphertext.empty();
}

EncryptedBlock ServerEngine::ShipBlock(size_t i) const {
  if (mapped_ == nullptr) return db_->blocks[i];
  // The one place mapped ciphertext is copied: into a response that ships
  // it. The kernel faults exactly the payload pages this slice covers.
  EncryptedBlock block;
  block.id = mapped_->BlockId(i);
  block.generation = mapped_->BlockGeneration(i);
  const auto payload = mapped_->BlockPayload(i);
  block.ciphertext.assign(payload.begin(), payload.end());
  return block;
}

size_t ServerEngine::BlockCiphertextBytes(size_t i) const {
  return mapped_ != nullptr ? mapped_->BlockPayload(i).size()
                            : db_->blocks[i].ciphertext.size();
}

const BPlusTree* ServerEngine::ValueIndex(const std::string& token) const {
  if (mapped_ != nullptr) return mapped_->ValueIndex(token);
  auto it = meta_->value_indexes.find(token);
  return it == meta_->value_indexes.end() ? nullptr : &it->second;
}

const std::vector<Interval>& ServerEngine::RangeProbeReps(
    const std::string& token, int64_t lo, int64_t hi) const {
  // Returned references stay valid after unlock: map nodes are stable and
  // an entry is never mutated once inserted. The hot case — the same
  // predicate re-probed from every thread of a parallel batch — takes only
  // the shared lock.
  const auto key = std::make_tuple(token, lo, hi);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = range_probe_cache_.find(key);
    if (it != range_probe_cache_.end()) return it->second;
  }

  // Compute outside any lock (the B-tree scan is read-only); racing
  // computations are idempotent and the first insert wins.
  std::vector<Interval> reps;
  const BPlusTree* tree = ValueIndex(token);
  if (tree != nullptr) {
    std::vector<int> block_ids;
    for (const BTreeEntry& e : tree->RangeScan(lo, hi)) {
      block_ids.push_back(e.block_id);
    }
    std::sort(block_ids.begin(), block_ids.end());
    block_ids.erase(std::unique(block_ids.begin(), block_ids.end()),
                    block_ids.end());
    for (int id : block_ids) {
      const Interval* rep = meta_->block_table.RepresentativeOf(id);
      if (rep != nullptr) reps.push_back(*rep);
    }
  }
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  return range_probe_cache_.try_emplace(key, std::move(reps)).first->second;
}

void ServerEngine::SetDataGeneration(uint64_t generation) {
  if (generation == data_generation_) return;
  data_generation_ = generation;
  plan_cache_.Clear();
  // PIR records embed per-block generations and index keys; a new
  // generation invalidates every hosted section (rebuilt on next setup).
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  pir_sections_.clear();
}

Result<privacy::PirHostedSection> ServerEngine::BuildPirSection(
    const std::string& section) const {
  privacy::PirParams params;
  // Public A-matrix seed: deterministic in (generation, section) so racing
  // builds of the same section agree and repeated setups of unchanged data
  // hand every client the same hint.
  uint64_t seed_state =
      data_generation_ ^
      (0x9e3779b97f4a7c15ULL * (std::hash<std::string>{}(section) | 1));
  params.seed = SplitMix64(seed_state);
  std::vector<uint8_t> records;
  auto put_u32 = [&records](uint32_t v) {
    records.push_back(static_cast<uint8_t>(v));
    records.push_back(static_cast<uint8_t>(v >> 8));
    records.push_back(static_cast<uint8_t>(v >> 16));
    records.push_back(static_cast<uint8_t>(v >> 24));
  };
  if (section == privacy::kBlockMetaSection) {
    const size_t n = BlockCount();
    if (n == 0) return Status::NotFound("no blocks to host: " + section);
    params.record_bytes = privacy::kBlockMetaRecordBytes;
    params.num_records = static_cast<uint32_t>(n);
    records.reserve(n * privacy::kBlockMetaRecordBytes);
    for (size_t i = 0; i < n; ++i) {
      put_u32(BlockGenerationOf(i));
      put_u32(static_cast<uint32_t>(BlockCiphertextBytes(i)));
    }
  } else {
    const std::string token = privacy::ParseOpessRootSection(section);
    if (token.empty()) {
      return Status::NotFound("unknown pir section: " + section);
    }
    const BPlusTree* tree = ValueIndex(token);
    if (tree == nullptr) {
      return Status::NotFound("no value index behind pir section: " + section);
    }
    const std::vector<int64_t> keys = tree->TopLevelKeys();
    if (keys.empty()) {
      return Status::NotFound("empty value index behind pir section: " +
                              section);
    }
    params.record_bytes = privacy::kOpessRootRecordBytes;
    params.num_records = static_cast<uint32_t>(keys.size());
    records.reserve(keys.size() * privacy::kOpessRootRecordBytes);
    for (int64_t key : keys) {
      const uint64_t v = static_cast<uint64_t>(key);
      put_u32(static_cast<uint32_t>(v));
      put_u32(static_cast<uint32_t>(v >> 32));
    }
  }
  return privacy::PirHostedSection::Build(params, std::move(records));
}

Result<const privacy::PirHostedSection*> ServerEngine::PirSection(
    const std::string& section) const {
  XCRYPT_RETURN_NOT_OK(EnsureReady());
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = pir_sections_.find(section);
    if (it != pir_sections_.end()) return &it->second;
  }
  // Build (the hint is the expensive part) outside any lock; racing builds
  // are deterministic in (generation, section), first insert wins.
  auto built = BuildPirSection(section);
  if (!built.ok()) return built.status();
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  auto it = pir_sections_.try_emplace(section, std::move(*built)).first;
  return &it->second;
}

void ServerEngine::SetMetricsRegistry(obs::MetricsRegistry* registry) {
  plan_hit_ = registry == nullptr ? nullptr
                                  : registry->GetCounter("plan_cache.hit");
  plan_miss_ = registry == nullptr ? nullptr
                                   : registry->GetCounter("plan_cache.miss");
}

void ServerEngine::SetPlanCacheCapacity(size_t capacity) {
  plan_cache_.SetCapacity(capacity);
}

const std::vector<Interval>& ServerEngine::Universe() const {
  return universe_;
}

std::vector<Interval> ServerEngine::LookupStep(
    const TranslatedStep& step) const {
  // `//*` reuses the universe materialized at construction instead of
  // re-running the DSI table's merge-and-sort on every wildcard step.
  if (step.wildcard) return Universe();
  std::vector<Interval> out;
  for (const std::string& token : step.tokens) {
    const auto& list = meta_->dsi_table.Lookup(token);
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<std::vector<Interval>>> ServerEngine::ForwardPass(
    const std::vector<TranslatedStep>& steps,
    const std::vector<Interval>& context, bool from_document_root,
    bool* conservative, obs::QueryContext* ctx) const {
  obs::Trace* trace = obs::TraceOf(ctx);
  std::vector<std::vector<Interval>> lists;
  lists.reserve(steps.size());
  std::vector<Interval> cur = context;

  for (size_t k = 0; k < steps.size(); ++k) {
    if (ctx != nullptr && ctx->Expired()) {
      return Status::Unavailable("deadline exceeded during forward pass");
    }
    const TranslatedStep& step = steps[k];
    std::vector<Interval> cand;
    {
      obs::Span lookup(trace, "index-lookup");
      cand = LookupStep(step);
    }
    {
      obs::Span join(trace, "structural-join");
      if (k == 0 && from_document_root) {
        if (step.axis == Axis::kChild) {
          // `/tag`: only the document root can match.
          std::vector<Interval> roots;
          for (const Interval& iv : cand) {
            if (IsRootInterval(iv)) roots.push_back(iv);
          }
          cand = std::move(roots);
        }
        // `//tag`: every occurrence qualifies.
      } else {
        if (step.axis == Axis::kDescendant) {
          cand = StructuralJoin::FilterDescendants(cur, cand);
        } else {
          cand = StructuralJoin::FilterChildren(cur, cand, forest_);
        }
      }
    }
    // Step predicates, each batched over the step's whole candidate list;
    // candidates failing an earlier predicate never reach a later one.
    // The span covers the whole batch, including the predicate's own
    // internal forward pass (which runs untraced so its joins/lookups are
    // attributed here, not double-counted into the sibling phases).
    if (!step.predicates.empty() && !cand.empty()) {
      obs::Span batch(trace, "predicate-batch");
      for (const TranslatedPredicate& pred : step.predicates) {
        if (cand.empty()) break;
        const std::vector<char> pass =
            BatchCheckPredicate(cand, pred, conservative);
        std::vector<Interval> kept;
        kept.reserve(cand.size());
        for (size_t i = 0; i < cand.size(); ++i) {
          if (pass[i]) kept.push_back(cand[i]);
        }
        cand = std::move(kept);
      }
    }
    lists.push_back(cand);
    cur = std::move(cand);
  }
  return lists;
}

std::vector<char> ServerEngine::BatchCheckPredicate(
    const std::vector<Interval>& candidates, const TranslatedPredicate& pred,
    bool* conservative) const {
  std::vector<char> pass(candidates.size(), 0);
  if (candidates.empty() || pred.path.empty()) return pass;

  // One ForwardPass over the union of contexts. Per-candidate lists are
  // subsets of these shared lists (every join is monotone in its context),
  // and the step predicates inside the pass are context-independent, so
  // each candidate's target set is recovered below by re-chaining through
  // the shared, already-pruned lists — without touching the full DSI lists
  // or the predicate machinery again. The pass runs without a context so
  // predicate-internal work stays attributed to the enclosing
  // predicate-batch span (and cannot fail: no deadline to exceed).
  auto shared_result =
      ForwardPass(pred.path, candidates, /*from_document_root=*/false,
                  conservative, /*ctx=*/nullptr);
  const std::vector<std::vector<Interval>>& shared = *shared_result;
  if (shared.empty() || shared.back().empty()) return pass;

  // Per-step join indexes, built once for the whole batch: every candidate
  // re-chains through the same shared pruned lists, so pre-sorting them
  // into the struct-of-arrays view (descendant axis) and pre-grouping them
  // by innermost enclosing parent (child axis) turns each re-chain step
  // into a pair of galloping searches / one group lookup instead of a
  // copy-sort-scan of the whole list per candidate.
  struct StepIndex {
    std::unique_ptr<SortedIntervalList> desc;
    std::unique_ptr<ChildGroups> child;
  };
  std::vector<StepIndex> index(shared.size());
  for (size_t k = 0; k < shared.size(); ++k) {
    if (pred.path[k].axis == Axis::kDescendant) {
      index[k].desc = std::make_unique<SortedIntervalList>(shared[k]);
    } else {
      index[k].child = std::make_unique<ChildGroups>(shared[k], forest_);
    }
  }

  // Candidates are independent (the chains only read the shared indexes,
  // the forest, and the memoized range probes); conservative verdicts are
  // collected per candidate and folded after the parallel section so the
  // out-parameter never races.
  const int n = static_cast<int>(candidates.size());
  std::vector<char> cons(candidates.size(), 0);
  auto check = [&](int i) {
    std::vector<Interval> cur = {candidates[i]};
    for (size_t k = 0; k < shared.size() && !cur.empty(); ++k) {
      if (index[k].desc != nullptr) {
        cur = StructuralJoin::FilterDescendants(cur, *index[k].desc);
      } else {
        cur = StructuralJoin::FilterChildren(cur, *index[k].child, forest_);
      }
    }
    if (cur.empty()) return;
    bool local_cons = false;
    pass[i] = PredicateKindHolds(candidates[i], pred, cur, &local_cons);
    if (local_cons) cons[i] = 1;
  };
  if (n >= kBatchParallelCutoff) {
    ThreadPool::Shared().ParallelFor(n, check);
  } else {
    for (int i = 0; i < n; ++i) check(i);
  }
  for (int i = 0; i < n; ++i) {
    if (cons[i] != 0) {
      *conservative = true;
      break;
    }
  }
  return pass;
}

bool ServerEngine::PredicateKindHolds(const Interval& candidate,
                                      const TranslatedPredicate& pred,
                                      const std::vector<Interval>& targets,
                                      bool* conservative) const {
  switch (pred.kind) {
    case TranslatedPredicate::Kind::kExists:
      return true;

    case TranslatedPredicate::Kind::kPlainValue: {
      for (const Interval& t : targets) {
        auto it = meta_->public_interval_to_node.find(t);
        if (it == meta_->public_interval_to_node.end()) continue;
        const Node& node = db_->skeleton.node(it->second);
        if (CompareValues(node.value, pred.op, pred.literal)) return true;
      }
      return false;
    }

    case TranslatedPredicate::Kind::kIndexRange: {
      // Mixed tag: a plaintext literal rides along when the target tag
      // also occurs publicly; a public target satisfying the comparison
      // settles the predicate without touching the value index.
      if (!pred.literal.empty()) {
        for (const Interval& t : targets) {
          auto it = meta_->public_interval_to_node.find(t);
          if (it == meta_->public_interval_to_node.end()) continue;
          const Node& node = db_->skeleton.node(it->second);
          if (CompareValues(node.value, pred.op, pred.literal)) return true;
        }
      }
      if (pred.range.empty) return false;
      const std::vector<Interval>& reps =
          RangeProbeReps(pred.index_token, pred.range.lo, pred.range.hi);

      bool matched_conservative = false;
      for (const Interval& rep : reps) {
        bool related = false;
        for (const Interval& t : targets) {
          if (t == rep || t.ProperlyInside(rep) || rep.ProperlyInside(t)) {
            related = true;
            break;
          }
        }
        if (!related) continue;
        // Attributable: the whole block lies at or below the candidate, so
        // the matching value occurrence belongs to this candidate.
        if (rep == candidate || rep.ProperlyInside(candidate)) {
          return true;
        }
        // The block strictly encloses the candidate: the value is in the
        // block, but possibly under a different candidate. Defer to the
        // client (it receives the block and re-checks).
        matched_conservative = true;
      }
      if (matched_conservative) {
        *conservative = true;
        return true;
      }
      return false;
    }
  }
  return false;
}

Result<EngineQueryResult> ServerEngine::Execute(
    const TranslatedQuery& query, const ExecOptions& opts) const {
  obs::QueryContext* ctx = opts.ctx;
  const std::span<const BlockAdvert> cached_blocks = opts.cached_blocks;
  if (query.steps.empty()) {
    return Status::InvalidArgument("empty translated query");
  }
  if (ctx != nullptr && ctx->Expired()) {
    return Status::Unavailable("deadline expired before server execution");
  }
  obs::Trace* trace = obs::TraceOf(ctx);
  Stopwatch watch;
  obs::Span server_span(trace, "server");
  const int server_id = server_span.id();
  XCRYPT_RETURN_NOT_OK(EnsureReady());

  // Plan-cache probe: a repeated query shape against the same data
  // generation replays its back-pruned ship roots straight into response
  // assembly (which must re-run — it depends on the caller's advertised
  // block cache), skipping the entire join pipeline.
  const std::string plan_key =
      "q|g" + std::to_string(data_generation_) + "|" + PlanShapeKey(query);
  if (std::shared_ptr<const CachedPlan> plan = plan_cache_.Lookup(plan_key)) {
    if (plan_hit_ != nullptr) plan_hit_->Add();
    { obs::Span cached(trace, "plan-cache"); }
    EngineQueryResult out;
    if (!plan->ship_roots.empty()) {
      obs::Span assemble(trace, "assemble");
      out.response = AssembleResponse(
          plan->ship_roots, plan->requires_full_requery, cached_blocks);
    }
    server_span.End();
    out.stats.server_process_us = watch.ElapsedMicros();
    if (trace != nullptr) {
      out.stats.server_phases = trace->ChildPhaseTotals(server_id);
    }
    return out;
  }
  if (plan_miss_ != nullptr) plan_miss_->Add();

  bool conservative = false;
  auto lists_result = ForwardPass(query.steps, {}, /*from_document_root=*/true,
                                  &conservative, ctx);
  if (!lists_result.ok()) return lists_result.status();
  const std::vector<std::vector<Interval>>& lists = *lists_result;

  EngineQueryResult out;
  std::vector<Interval> ship_roots = lists.back();
  if (!ship_roots.empty() && conservative) {
    // Some predicate could not be attributed server-side; back-prune to
    // the first step's surviving matches and ship their whole subtrees so
    // the client can re-apply the full query.
    obs::Span backprune(trace, "structural-join");
    std::vector<Interval> prev = ship_roots;
    for (size_t k = lists.size() - 1; k-- > 0;) {
      prev = StructuralJoin::FilterAncestors(lists[k], prev);
    }
    ship_roots = std::move(prev);
  }
  {
    // Only successful evaluations are cached (an error/deadline path never
    // reaches here); empty results are plans too.
    auto plan = std::make_shared<CachedPlan>();
    plan->ship_roots = ship_roots;
    plan->requires_full_requery = conservative;
    plan_cache_.Insert(plan_key, std::move(plan));
  }
  if (!ship_roots.empty()) {
    obs::Span assemble(trace, "assemble");
    out.response = AssembleResponse(ship_roots, conservative, cached_blocks);
  }
  server_span.End();
  out.stats.server_process_us = watch.ElapsedMicros();
  if (trace != nullptr) {
    out.stats.server_phases = trace->ChildPhaseTotals(server_id);
  }
  return out;
}

ServerResponse ServerEngine::AssembleResponse(
    const std::vector<Interval>& ship_roots, bool requires_full_requery,
    std::span<const BlockAdvert> cached_blocks) const {
  const Document& skeleton = db_->skeleton;
  // Marking flags are relaxed atomics: the per-root marking below is
  // idempotent (only ever 0 -> 1), so roots mark concurrently and the
  // ParallelFor join publishes the flags to the sequential copy pass.
  std::vector<std::atomic<uint8_t>> include(skeleton.node_count());
  for (auto& f : include) f.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<uint8_t>> ship_block(BlockCount());
  for (auto& f : ship_block) f.store(0, std::memory_order_relaxed);

  auto mark_ancestors = [&](NodeId id) {
    for (NodeId p = skeleton.node(id).parent; p != kNullNode;
         p = skeleton.node(p).parent) {
      include[p].store(1, std::memory_order_relaxed);
    }
  };
  auto mark_subtree = [&](NodeId id) {
    skeleton.Visit(id, [&](NodeId n) {
      include[n].store(1, std::memory_order_relaxed);
      if (skeleton.node(n).tag == kBlockMarkerTag) {
        for (NodeId c : skeleton.node(n).children) {
          const Node& attr = skeleton.node(c);
          if (attr.is_attribute && attr.tag == "id") {
            // Malformed ids are skipped, not mapped to block 0.
            const int id_val = ParseBlockId(attr.value);
            if (id_val >= 0 &&
                static_cast<size_t>(id_val) < ship_block.size()) {
              ship_block[id_val].store(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  };

  auto mark_root = [&](int r) {
    const Interval& iv = ship_roots[r];
    // Innermost covering block, if the root lies in one: a single walk in
    // the block-representative forest instead of a block-table scan.
    int best_block = -1;
    const int node = block_forest_.InnermostCovering(iv);
    if (node != LaminarForest::kNone) best_block = block_of_forest_node_[node];
    if (best_block >= 0) {
      const NodeId marker = db_->marker_of_block[best_block];
      mark_subtree(marker);
      mark_ancestors(marker);
      ship_block[best_block].store(1, std::memory_order_relaxed);
      return;
    }
    auto it = meta_->public_interval_to_node.find(iv);
    if (it == meta_->public_interval_to_node.end()) return;  // defensive
    mark_subtree(it->second);
    mark_ancestors(it->second);
  };
  if (ship_roots.size() >= kAssembleParallelCutoff) {
    ThreadPool::Shared().ParallelFor(static_cast<int>(ship_roots.size()),
                                     mark_root);
  } else {
    for (size_t r = 0; r < ship_roots.size(); ++r) {
      mark_root(static_cast<int>(r));
    }
  }

  // Copy the pruned skeleton. Attribute children of included nodes ride
  // along so ancestor-chain elements keep their attributes.
  Document pruned;
  struct Frame {
    NodeId src;
    NodeId dst_parent;
  };
  std::vector<Frame> stack;
  if (!skeleton.empty() &&
      include[skeleton.root()].load(std::memory_order_relaxed) != 0) {
    stack.push_back({skeleton.root(), kNullNode});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& src = skeleton.node(f.src);
    NodeId dst = (f.dst_parent == kNullNode)
                     ? pruned.AddRoot(src.tag)
                     : pruned.AddChild(f.dst_parent, src.tag);
    pruned.node(dst).value = src.value;
    pruned.node(dst).is_attribute = src.is_attribute;
    for (auto it = src.children.rbegin(); it != src.children.rend(); ++it) {
      if (include[*it].load(std::memory_order_relaxed) != 0 ||
          skeleton.node(*it).is_attribute) {
        stack.push_back({*it, dst});
      }
    }
  }

  // Advertised (id, generation) pairs, indexed for the stub decision. Only
  // an exact generation match may be stubbed: a stale advertisement means
  // the client's copy predates a re-encryption, so the payload ships.
  std::map<int, uint32_t> advertised;
  for (const BlockAdvert& a : cached_blocks) {
    advertised.emplace(a.id, a.generation);
  }

  ServerResponse response;
  response.requires_full_requery = requires_full_requery;
  response.skeleton_xml = SerializeXml(pruned, pruned.root(), 0);
  for (size_t i = 0; i < ship_block.size(); ++i) {
    if (ship_block[i].load(std::memory_order_relaxed) == 0) continue;
    const auto it = advertised.find(static_cast<int>(i));
    if (it != advertised.end() && it->second == BlockGenerationOf(i)) {
      response.cached_ids.push_back(static_cast<int>(i));
    } else {
      response.blocks.push_back(ShipBlock(i));
    }
  }
  return response;
}

Result<EngineQueryResult> ServerEngine::ExecuteNaive(
    const ExecOptions& opts) const {
  obs::QueryContext* ctx = opts.ctx;
  if (ctx != nullptr && ctx->Expired()) {
    return Status::Unavailable("deadline expired before server execution");
  }
  obs::Trace* trace = obs::TraceOf(ctx);
  Stopwatch watch;
  obs::Span server_span(trace, "server");
  const int server_id = server_span.id();
  XCRYPT_RETURN_NOT_OK(EnsureReady());

  EngineQueryResult out;
  {
    obs::Span assemble(trace, "assemble");
    out.response.requires_full_requery = true;
    out.response.skeleton_xml =
        SerializeXml(db_->skeleton, db_->skeleton.root(), 0);
    for (size_t i = 0; i < BlockCount(); ++i) {
      // Deleted subtrees leave tombstoned (empty-ciphertext) block slots
      // behind; shipping those would make the client fail decryption.
      if (!BlockTombstoned(i)) out.response.blocks.push_back(ShipBlock(i));
    }
  }
  server_span.End();
  out.stats.server_process_us = watch.ElapsedMicros();
  if (trace != nullptr) {
    out.stats.server_phases = trace->ChildPhaseTotals(server_id);
  }
  return out;
}

}  // namespace xcrypt
