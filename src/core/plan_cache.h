#ifndef XCRYPT_CORE_PLAN_CACHE_H_
#define XCRYPT_CORE_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/translated_query.h"
#include "index/dsi.h"

namespace xcrypt {

/// The replayable part of one evaluated query: everything Execute derives
/// *before* response assembly. Assembly itself always re-runs — it is
/// cheap relative to the join pipeline and depends on per-call state (the
/// client's advertised block cache), while the pruned interval lists below
/// depend only on the query shape and the database contents.
struct CachedPlan {
  /// Back-pruned output-step roots, ready for AssembleResponse.
  std::vector<Interval> ship_roots;
  bool requires_full_requery = false;

  /// Aggregate-only: the server computed the final value itself.
  bool computed_on_server = false;
  std::string server_value;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t entries = 0;
};

/// Bounded, thread-safe plan cache mapping a normalized query-shape key to
/// an immutable CachedPlan. Readers take a shared lock (concurrent lookups
/// never serialize each other); insertion takes the exclusive lock and
/// evicts the least-recently-used entry once at capacity. Values are
/// shared_ptr-to-const so a hit stays valid even if the entry is evicted
/// mid-use.
///
/// Invalidation is the owner's job: the engine holding the cache clears it
/// whenever the underlying data generation moves (see
/// ServerEngine::SetDataGeneration), and keys embed that generation so a
/// stale plan can never satisfy a lookup issued after an update.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Returns the cached plan or nullptr; counts a hit/miss either way.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key) const;

  /// Inserts (or overwrites) `plan` under `key`. No-op when disabled
  /// (capacity 0).
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  /// Drops every entry; hit/miss counters keep running.
  void Clear();

  /// Resizes the cache (0 disables it and drops everything). Shrinking
  /// evicts oldest-first until the new capacity fits.
  void SetCapacity(size_t capacity);

  PlanCacheStats Stats() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    /// Logical LRU clock value at last touch; boxed so shared-lock readers
    /// can bump it without the exclusive lock.
    std::unique_ptr<std::atomic<uint64_t>> last_used;
  };

  void EvictDownToLocked(size_t target);

  mutable std::shared_mutex mu_;
  size_t capacity_;  ///< guarded by mu_
  std::unordered_map<std::string, Entry> entries_;  ///< guarded by mu_
  mutable std::atomic<uint64_t> tick_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

/// Canonical rendering of a translated query's *shape* for plan-cache
/// keying: per step the axis, the sorted token list, the wildcard flag,
/// and the recursively normalized predicates, themselves sorted so
/// predicate order (which does not affect semantics — predicates conjoin)
/// does not fragment the cache. Two queries get the same key iff they
/// drive the join pipeline identically.
std::string PlanShapeKey(const TranslatedQuery& query);

}  // namespace xcrypt

#endif  // XCRYPT_CORE_PLAN_CACHE_H_
