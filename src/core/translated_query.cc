#include "core/translated_query.h"

namespace xcrypt {

namespace {

void AppendSteps(const std::vector<TranslatedStep>& steps, std::string* out) {
  for (const TranslatedStep& step : steps) {
    *out += (step.axis == Axis::kDescendant) ? "//" : "/";
    if (step.wildcard) {
      *out += '*';
    } else {
      for (size_t i = 0; i < step.tokens.size(); ++i) {
        if (i > 0) *out += '|';
        *out += step.tokens[i];
      }
    }
    for (const TranslatedPredicate& pred : step.predicates) {
      *out += '[';
      AppendSteps(pred.path, out);
      switch (pred.kind) {
        case TranslatedPredicate::Kind::kExists:
          break;
        case TranslatedPredicate::Kind::kPlainValue:
          *out += CompOpSymbol(pred.op);
          *out += '\'';
          *out += pred.literal;
          *out += '\'';
          break;
        case TranslatedPredicate::Kind::kIndexRange:
          *out += " in [";
          *out += pred.range.empty ? "empty"
                                   : std::to_string(pred.range.lo) + ".." +
                                         std::to_string(pred.range.hi);
          *out += ']';
          break;
      }
      *out += ']';
    }
  }
}

}  // namespace

std::string TranslatedQuery::ToString() const {
  std::string out;
  AppendSteps(steps, &out);
  return out;
}

}  // namespace xcrypt
