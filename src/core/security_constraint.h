#ifndef XCRYPT_CORE_SECURITY_CONSTRAINT_H_
#define XCRYPT_CORE_SECURITY_CONSTRAINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xpath/ast.h"

namespace xcrypt {

/// A security constraint (§3.2): what the data owner wants protected.
///
/// Node type constraint `p`: for every node the XPath expression `p` binds
/// to, the whole element subtree (tag, structure, contents) is classified.
///
/// Association type constraint `p : (q1, q2)`: for every context node bound
/// by `p` and every value pair (v1, v2) bound by q1/q2 in that context, the
/// *association* between v1 and v2 is classified.
struct SecurityConstraint {
  /// Context path `p`.
  PathExpr context;
  /// Present for association constraints: the (q1, q2) relative paths.
  std::optional<std::pair<PathExpr, PathExpr>> association;
  /// Original source text, for reporting.
  std::string source;

  bool IsNodeType() const { return !association.has_value(); }
  bool IsAssociation() const { return association.has_value(); }

  std::string ToString() const;
};

/// Parses one SC from the paper's syntax:
///   `//insurance`                         (node type)
///   `//patient:(/pname, /SSN)`            (association)
///   `//patient:(/pname, //disease)`       (association, descendant leg)
Result<SecurityConstraint> ParseSecurityConstraint(const std::string& text);

/// Parses a list of SCs, one per line (blank lines and `#` comments are
/// skipped).
Result<std::vector<SecurityConstraint>> ParseSecurityConstraints(
    const std::string& text);

/// The binding of one SC against a concrete database: which nodes must be
/// protected, computed with the reference XPath evaluator.
struct ConstraintBinding {
  SecurityConstraint constraint;
  /// Node-type SC: the nodes p binds to.
  std::vector<NodeId> context_nodes;
  /// Association SC: per context node, the q1- and q2-bound nodes.
  std::vector<std::vector<NodeId>> q1_nodes;
  std::vector<std::vector<NodeId>> q2_nodes;
};

/// Evaluates all SCs against `doc`.
std::vector<ConstraintBinding> BindConstraints(
    const Document& doc, const std::vector<SecurityConstraint>& constraints);

/// True if query `q` is captured by constraint `sc` (§3.2): for a node-type
/// SC p, every query whose path extends p; for an association SC
/// p : (q1, q2), queries of the form p[q1 = v1][q2 = v2].
bool IsCapturedBy(const PathExpr& q, const SecurityConstraint& sc);

}  // namespace xcrypt

#endif  // XCRYPT_CORE_SECURITY_CONSTRAINT_H_
