#ifndef XCRYPT_CORE_ENCRYPTOR_H_
#define XCRYPT_CORE_ENCRYPTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/encryption_scheme.h"
#include "crypto/keychain.h"
#include "index/dsi.h"
#include "xml/document.h"

namespace xcrypt {

/// Tag of the decoy leaf added under encrypted leaf elements (§4.1). The
/// tag only ever appears inside ciphertext, so the server never sees it;
/// the client strips decoys during post-processing (§6.4).
inline constexpr char kDecoyTag[] = "_decoy";

/// Tag of the placeholder the skeleton keeps where an encrypted subtree
/// was; its "id" attribute is the block id.
inline constexpr char kBlockMarkerTag[] = "_encblock";

/// One encryption block: an AES-CBC-encrypted serialized element subtree.
struct EncryptedBlock {
  int id = 0;
  Bytes ciphertext;
  /// Plaintext byte size before encryption (client-side knowledge, used by
  /// the experiment reports; never shipped to the server).
  int64_t plaintext_bytes = 0;
  /// Bumped every time the block is re-encrypted (value updates). The
  /// client block cache keys entries by (id, generation), and the server
  /// only stubs out an advertised block when the generations match — a
  /// stale advertisement fails the comparison and the fresh payload ships,
  /// so cache coherence never depends on the client hearing about an
  /// update.
  uint32_t generation = 0;

  int64_t CiphertextBytes() const {
    return static_cast<int64_t>(ciphertext.size());
  }
};

/// A client's claim, attached to a query, that it holds the decrypted
/// payload of block `id` at `generation` — inviting the server to omit
/// that block's ciphertext from the response (wire v3).
struct BlockAdvert {
  int id = 0;
  uint32_t generation = 0;
};

/// The encrypted database as hosted by the server: the plaintext skeleton
/// (encrypted subtrees replaced by `_encblock` markers) plus the blocks.
struct EncryptedDatabase {
  Document skeleton;
  std::vector<EncryptedBlock> blocks;
  /// skeleton NodeId of each block's marker, indexed by block id.
  std::vector<NodeId> marker_of_block;

  int64_t TotalCiphertextBytes() const;
};

/// Result of encrypting a document: what goes to the server plus the
/// client-side bookkeeping needed to build metadata and translate queries.
struct EncryptionResult {
  EncryptedDatabase database;
  /// Block id containing each original node; -1 if the node stays public.
  /// Indexed by original NodeId. Client-side only.
  std::vector<int> block_of_node;
  /// Skeleton NodeId corresponding to each original node: the copied node
  /// for public nodes, the `_encblock` marker for block roots, kNullNode
  /// for nodes strictly inside a block. Indexed by original NodeId.
  std::vector<NodeId> skeleton_of_node;
  /// Tags that occur encrypted anywhere (drives tag tokenization).
  std::vector<std::string> encrypted_tags;
};

/// Applies `scheme` to `doc` (§4.1): serializes each block root's subtree,
/// adds a decoy child to encrypted leaf elements, and encrypts each block
/// under the client's block key with a per-block nonce.
Result<EncryptionResult> EncryptDocument(const Document& doc,
                                         const EncryptionScheme& scheme,
                                         const KeyChain& keys);

/// Decrypts one block back into its subtree (decoy still present).
Result<Document> DecryptBlock(const EncryptedBlock& block,
                              const KeyChain& keys);

/// Removes every decoy node from `doc` in place.
void RemoveDecoys(Document& doc);

/// Rebuilds `skeleton`'s arena in reachable pre-order, dropping detached
/// nodes (the bundle image format cannot represent them). Remaps
/// `marker_of_block` entries (detached markers become kNullNode) and
/// rebuilds `public_map`, dropping entries whose node went away. Returns
/// the old-id -> new-id map (kNullNode for dropped nodes). Run by the
/// owner after structural deletes and replayed verbatim by ApplyDelta,
/// so both sides stay id-for-id aligned.
std::vector<NodeId> CompactSkeleton(Document* skeleton,
                                    std::vector<NodeId>* marker_of_block,
                                    std::map<Interval, NodeId>* public_map);

}  // namespace xcrypt

#endif  // XCRYPT_CORE_ENCRYPTOR_H_
