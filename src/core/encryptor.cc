#include "core/encryptor.h"

#include <algorithm>
#include <set>

#include "common/random.h"
#include "xml/parser.h"

namespace xcrypt {

int64_t EncryptedDatabase::TotalCiphertextBytes() const {
  int64_t total = 0;
  for (const EncryptedBlock& b : blocks) total += b.CiphertextBytes();
  return total;
}

Result<EncryptionResult> EncryptDocument(const Document& doc,
                                         const EncryptionScheme& scheme,
                                         const KeyChain& keys) {
  if (doc.empty()) return Status::InvalidArgument("empty document");

  EncryptionResult result;
  result.block_of_node.assign(doc.node_count(), -1);
  result.skeleton_of_node.assign(doc.node_count(), kNullNode);

  // Assign block ids in document order of the roots.
  std::vector<NodeId> roots = scheme.block_roots;
  std::sort(roots.begin(), roots.end());
  for (size_t i = 0; i < roots.size(); ++i) {
    const int block_id = static_cast<int>(i);
    doc.Visit(roots[i], [&](NodeId id) {
      result.block_of_node[id] = block_id;
    });
  }

  // Tags that occur encrypted.
  std::set<std::string> enc_tags;
  for (NodeId id : doc.PreOrder()) {
    if (result.block_of_node[id] >= 0) {
      const Node& n = doc.node(id);
      enc_tags.insert((n.is_attribute ? "@" : "") + n.tag);
    }
  }
  result.encrypted_tags.assign(enc_tags.begin(), enc_tags.end());

  // Decoy randomness is derived from the key so hosting is reproducible
  // per key but unpredictable to the server.
  Rng decoy_rng(keys.RngSeed("decoy"));

  // Build the skeleton as a fresh document mirroring the public part.
  // We cannot reuse original NodeIds (the skeleton is a different arena),
  // so record marker node per block.
  EncryptedDatabase& db = result.database;
  db.marker_of_block.assign(roots.size(), kNullNode);

  struct Frame {
    NodeId src;
    NodeId dst_parent;
  };
  // Recursive copy with block substitution.
  std::vector<Frame> stack;
  stack.push_back({doc.root(), kNullNode});
  // (Iterative preorder that preserves child order via reverse push.)
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const int block_id = result.block_of_node[f.src];
    if (block_id >= 0) {
      // Block root (nested roots were pruned, so this node starts a block).
      // 1. Serialize the subtree, adding a decoy to leaf blocks.
      Document payload;
      payload.GraftSubtree(doc, f.src, kNullNode);
      if (payload.node_count() == 1) {
        payload.AddLeaf(payload.root(), kDecoyTag,
                        decoy_rng.String(4 + static_cast<int>(
                                                 decoy_rng.UniformU64(0, 4))));
      }
      const std::string plain = SerializeXml(payload, payload.root(), 0);
      const Bytes cipher = keys.block_cipher().Encrypt(
          ToBytes(plain), "block:" + std::to_string(block_id));
      EncryptedBlock block;
      block.id = block_id;
      block.ciphertext = cipher;
      block.plaintext_bytes = static_cast<int64_t>(plain.size());
      if (static_cast<size_t>(block_id) >= db.blocks.size()) {
        db.blocks.resize(block_id + 1);
      }
      db.blocks[block_id] = std::move(block);

      // 2. Leave a marker in the skeleton.
      NodeId marker;
      if (f.dst_parent == kNullNode) {
        marker = db.skeleton.AddRoot(kBlockMarkerTag);
      } else {
        marker = db.skeleton.AddChild(f.dst_parent, kBlockMarkerTag);
      }
      db.skeleton.AddAttribute(marker, "id", std::to_string(block_id));
      db.marker_of_block[block_id] = marker;
      result.skeleton_of_node[f.src] = marker;
      continue;  // do not descend into the block
    }

    const Node& src = doc.node(f.src);
    NodeId dst;
    if (f.dst_parent == kNullNode) {
      dst = db.skeleton.AddRoot(src.tag);
    } else {
      dst = db.skeleton.AddChild(f.dst_parent, src.tag);
    }
    db.skeleton.node(dst).value = src.value;
    db.skeleton.node(dst).is_attribute = src.is_attribute;
    result.skeleton_of_node[f.src] = dst;
    for (auto it = src.children.rbegin(); it != src.children.rend(); ++it) {
      stack.push_back({*it, dst});
    }
  }
  return result;
}

Result<Document> DecryptBlock(const EncryptedBlock& block,
                              const KeyChain& keys) {
  auto plain = keys.block_cipher().Decrypt(block.ciphertext);
  if (!plain.ok()) return plain.status();
  return ParseXml(FromBytes(*plain));
}

void RemoveDecoys(Document& doc) {
  if (doc.empty()) return;
  std::vector<NodeId> decoys;
  doc.Visit(doc.root(), [&](NodeId id) {
    if (doc.node(id).tag == kDecoyTag) decoys.push_back(id);
  });
  for (NodeId id : decoys) {
    (void)doc.Detach(id);
  }
}

std::vector<NodeId> CompactSkeleton(Document* skeleton,
                                    std::vector<NodeId>* marker_of_block,
                                    std::map<Interval, NodeId>* public_map) {
  std::vector<NodeId> remap(skeleton->node_count(), kNullNode);
  Document fresh;
  if (!skeleton->empty()) {
    // Explicit stack with reversed child pushes reproduces pre-order, so
    // AddChild sees children arrive in document order.
    std::vector<std::pair<NodeId, NodeId>> stack;  // (src, dst_parent)
    stack.emplace_back(skeleton->root(), kNullNode);
    while (!stack.empty()) {
      auto [src, dst_parent] = stack.back();
      stack.pop_back();
      const Node& n = skeleton->node(src);
      const NodeId dst = dst_parent == kNullNode
                             ? fresh.AddRoot(n.tag)
                             : fresh.AddChild(dst_parent, n.tag);
      fresh.node(dst).value = n.value;
      fresh.node(dst).is_attribute = n.is_attribute;
      remap[src] = dst;
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        stack.emplace_back(*it, dst);
      }
    }
  }
  *skeleton = std::move(fresh);
  for (NodeId& marker : *marker_of_block) {
    if (marker != kNullNode) marker = remap[marker];
  }
  if (public_map != nullptr) {
    std::map<Interval, NodeId> rebuilt;
    for (const auto& [iv, node] : *public_map) {
      if (node == kNullNode) continue;
      const NodeId mapped = remap[node];
      if (mapped != kNullNode) rebuilt.emplace(iv, mapped);
    }
    *public_map = std::move(rebuilt);
  }
  return remap;
}

}  // namespace xcrypt
