#ifndef XCRYPT_CORE_VERTEX_COVER_H_
#define XCRYPT_CORE_VERTEX_COVER_H_

#include <vector>

#include "core/constraint_graph.h"

namespace xcrypt {

/// Exact minimum-weight vertex cover by branch and bound over edges.
/// Exponential in the worst case — finding the optimal secure encryption
/// scheme is NP-hard (Theorem 4.2, by reduction from VERTEX COVER) — but
/// constraint graphs have one vertex per *tag* in the SCs, so they are tiny
/// in practice (the paper's Figure 8 graphs have 6-7 vertices).
std::vector<int> ExactVertexCover(const ConstraintGraph& graph);

/// Clarkson's modified greedy 2-approximation for weighted vertex cover
/// ("A modification of the greedy algorithm for vertex cover", IPL 1983) —
/// the algorithm the paper's *app* scheme uses (§7.1, citing [10]).
/// Repeatedly picks the vertex minimizing residual-weight / degree, charging
/// the ratio to incident edges.
std::vector<int> ClarksonGreedyVertexCover(const ConstraintGraph& graph);

}  // namespace xcrypt

#endif  // XCRYPT_CORE_VERTEX_COVER_H_
