#ifndef XCRYPT_CORE_TRANSLATED_QUERY_H_
#define XCRYPT_CORE_TRANSLATED_QUERY_H_

#include <string>
#include <vector>

#include "core/opess.h"
#include "xpath/ast.h"

namespace xcrypt {

struct TranslatedStep;

/// A predicate after client-side translation (§6.1):
///  - kExists: purely structural, evaluated with structural joins;
///  - kPlainValue: value test on an unencrypted leaf — the server compares
///    against the plaintext skeleton directly;
///  - kIndexRange: value test on an encrypted leaf — translated to a range
///    probe on the OPESS B-tree identified by `index_token` (Fig. 7a).
struct TranslatedPredicate {
  enum class Kind { kExists, kPlainValue, kIndexRange };
  Kind kind = Kind::kExists;
  /// Tokenized relative path from the context node to the target.
  std::vector<TranslatedStep> path;
  CompOp op = CompOp::kEq;  ///< kPlainValue only
  std::string literal;      ///< kPlainValue only
  std::string index_token;  ///< kIndexRange: which value index
  OpessRange range;         ///< kIndexRange: inclusive ciphertext range
};

/// One location step after translation: the tag replaced by its DSI-table
/// token(s) — the Vernam pseudonym when the tag occurs encrypted, the
/// plaintext name when it occurs publicly, both when the tag is mixed
/// (e.g. a tag encrypted inside node-type-SC subtrees but public
/// elsewhere). "*" is kept as a wildcard.
struct TranslatedStep {
  Axis axis = Axis::kChild;
  std::vector<std::string> tokens;
  bool wildcard = false;
  std::vector<TranslatedPredicate> predicates;
};

/// The encrypted query Qs sent to the server.
struct TranslatedQuery {
  std::vector<TranslatedStep> steps;

  /// Rendering for logs/tests, e.g. `//patient[.//X95SER//@TY0POA in
  /// [764398..812001]]//U84573`.
  std::string ToString() const;
};

}  // namespace xcrypt

#endif  // XCRYPT_CORE_TRANSLATED_QUERY_H_
