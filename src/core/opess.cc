#include "core/opess.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "xml/stats.h"

namespace xcrypt {

namespace {

bool IsNumeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// True if n is expressible as a sum of chunks from {m-1, m, m+1}:
/// some t >= 1 chunks exist with t(m-1) <= n <= t(m+1).
bool Representable(int64_t n, int m) {
  const int64_t t_min = (n + m) / (m + 1);  // ceil(n / (m+1))
  return t_min >= 1 && t_min * (m - 1) <= n;
}

/// Decomposes n into chunks from {m-1, m, m+1}. Uses the fewest chunks,
/// except that a single-chunk decomposition is widened to two chunks when
/// representable: Theorem 6.1 requires more ciphertext values than
/// plaintext values (n > k), so every multi-occurrence value should split
/// whenever the arithmetic allows.
std::vector<int> Decompose(int64_t n, int m) {
  int64_t t = std::max<int64_t>(1, (n + m) / (m + 1));
  if (t == 1 && n >= 2 * (m - 1) && m >= 2) t = 2;
  std::vector<int> chunks(t, m);
  int64_t diff = n - t * m;  // in [-t, t]
  for (int64_t i = 0; diff > 0; ++i, --diff) chunks[i] = m + 1;
  for (int64_t i = 0; diff < 0; ++i, ++diff) chunks[i] = m - 1;
  return chunks;
}

}  // namespace

double OpessTagMeta::WeightSum() const {
  double sum = 0.0;
  for (double w : weights) sum += w;
  return sum;
}

double OpessTagMeta::NumericImage(const std::string& literal,
                                  bool* known) const {
  if (!categorical) {
    *known = true;  // numeric literals are always translatable
    return std::strtod(literal.c_str(), nullptr);
  }
  auto it = ordinals.find(literal);
  if (it != ordinals.end()) {
    *known = true;
    return static_cast<double>(it->second);
  }
  *known = false;
  // Insertion position between ordinals p and p+1 -> p + 0.5.
  const auto pos = std::lower_bound(sorted_values.begin(),
                                    sorted_values.end(), literal, ValueLess);
  return static_cast<double>(pos - sorted_values.begin()) + 0.5;
}

Result<OpessBuild> BuildOpess(
    const std::string& tag,
    const std::vector<std::pair<std::string, int32_t>>& occurrences,
    const OpeFunction& ope, Rng& rng, const OpessOptions& options) {
  if (occurrences.empty()) {
    return Status::InvalidArgument("no occurrences for tag " + tag);
  }

  OpessBuild build;
  OpessTagMeta& meta = build.meta;
  meta.tag = tag;

  // Distinct values in domain order, with counts and block lists.
  std::map<std::string, std::vector<int32_t>> by_value;
  for (const auto& [value, block] : occurrences) {
    by_value[value].push_back(block);
    if (!IsNumeric(value)) meta.categorical = true;
  }
  meta.sorted_values.reserve(by_value.size());
  for (const auto& [value, blocks] : by_value) {
    meta.sorted_values.push_back(value);
  }
  std::sort(meta.sorted_values.begin(), meta.sorted_values.end(), ValueLess);
  for (size_t i = 0; i < meta.sorted_values.size(); ++i) {
    meta.ordinals[meta.sorted_values[i]] = static_cast<int64_t>(i) + 1;
  }

  // Numeric images of the distinct values.
  std::vector<double> images(meta.sorted_values.size());
  for (size_t i = 0; i < images.size(); ++i) {
    images[i] = meta.categorical
                    ? static_cast<double>(i + 1)
                    : std::strtod(meta.sorted_values[i].c_str(), nullptr);
  }

  // delta: minimum positive gap (see header comment).
  meta.delta = 1.0;
  if (images.size() >= 2) {
    double min_gap = images[1] - images[0];
    for (size_t i = 2; i < images.size(); ++i) {
      min_gap = std::min(min_gap, images[i] - images[i - 1]);
    }
    meta.delta = min_gap > 0 ? min_gap : 1.0;
  }

  // Choose the maximum m for which every count > 1 is representable.
  int64_t max_count = 0;
  bool any_multi = false;
  for (const auto& [value, blocks] : by_value) {
    const int64_t n = static_cast<int64_t>(blocks.size());
    max_count = std::max(max_count, n);
    if (n > 1) any_multi = true;
  }
  // Pick the largest m for which every multi-occurrence count is
  // representable, then chunk. If the chunking does not produce strictly
  // more ciphertext values than plaintext values (the n > k premise of
  // Theorem 6.1), retry with a smaller m — m = 2 (chunks {1,2,3}) always
  // splits every count >= 2 in two.
  const int64_t k_distinct = static_cast<int64_t>(meta.sorted_values.size());
  std::vector<std::vector<int>> chunking(meta.sorted_values.size());
  int max_chunks = 0;
  int m_start = 3;
  if (any_multi) {
    for (int m = static_cast<int>(max_count) + 1; m >= 2; --m) {
      bool all_ok = true;
      for (const auto& [value, blocks] : by_value) {
        const int64_t n = static_cast<int64_t>(blocks.size());
        if (n > 1 && !Representable(n, m)) {
          all_ok = false;
          break;
        }
      }
      if (all_ok) {
        m_start = m;
        break;
      }
    }
  }
  for (int m = m_start; m >= 2; --m) {
    bool all_ok = true;
    int64_t total_chunks = 0;
    max_chunks = 0;
    for (size_t i = 0; i < meta.sorted_values.size(); ++i) {
      const int64_t n =
          static_cast<int64_t>(by_value[meta.sorted_values[i]].size());
      if (n == 1) {
        // "we split v_i into m values": m index entries for the single
        // occurrence.
        chunking[i].assign(m, 1);
      } else if (Representable(n, m)) {
        chunking[i] = Decompose(n, m);
      } else {
        all_ok = false;
        break;
      }
      total_chunks += static_cast<int64_t>(chunking[i].size());
      max_chunks = std::max(max_chunks, static_cast<int>(chunking[i].size()));
    }
    if (all_ok && (total_chunks > k_distinct || m == 2)) {
      meta.m = m;
      break;
    }
  }
  meta.num_keys = max_chunks;
  meta.weights = rng.DistinctSortedDoubles(
      max_chunks, 1e-9, 1.0 / (max_chunks + 1));

  // Emit entries: chunk j of value v_i maps occurrences to
  // enc(v_i + (w1+...+wj) * delta); then scale.
  for (size_t i = 0; i < meta.sorted_values.size(); ++i) {
    const std::string& value = meta.sorted_values[i];
    const std::vector<int32_t>& blocks = by_value[value];

    OpessSplit split;
    split.value = value;
    split.occurrences = static_cast<int64_t>(blocks.size());
    split.chunk_sizes = chunking[i];
    split.scale = rng.UniformDouble(options.scale_min, options.scale_max);

    std::vector<BTreeEntry> base;
    double displacement = 0.0;
    size_t occ = 0;
    for (size_t j = 0; j < chunking[i].size(); ++j) {
      displacement += meta.weights[j];
      const int64_t cipher =
          ope.EncryptReal(images[i] + displacement * meta.delta);
      for (int c = 0; c < chunking[i][j]; ++c) {
        // Singleton values reuse their one occurrence for all m entries.
        const int32_t block =
            blocks[std::min(occ, blocks.size() - 1)];
        base.push_back({cipher, block});
        if (blocks.size() > 1) ++occ;
      }
    }

    // Scaling: replicate the base entries to ~scale times their count.
    const int64_t target = std::max<int64_t>(
        static_cast<int64_t>(base.size()),
        std::llround(split.scale * static_cast<double>(base.size())));
    for (int64_t r = 0; r < target; ++r) {
      build.entries.push_back(base[r % base.size()]);
    }
    build.splits.push_back(std::move(split));
  }

  std::sort(build.entries.begin(), build.entries.end());
  return build;
}

Result<OpessRange> TranslateValueConstraint(const OpessTagMeta& meta,
                                            const OpeFunction& ope, CompOp op,
                                            const std::string& literal) {
  if (op == CompOp::kNe) {
    return Status::Unsupported(
        "!= cannot be translated to a single index range");
  }
  const double w1 = meta.weights.empty() ? 0.0 : meta.weights.front();
  const double w_sum = meta.WeightSum();
  auto image_of = [&meta](size_t index) {
    return meta.categorical
               ? static_cast<double>(index + 1)
               : std::strtod(meta.sorted_values[index].c_str(), nullptr);
  };
  auto enc_first_chunk = [&](double x) {  // enc(x + w1*delta)
    return ope.EncryptReal(x + w1 * meta.delta);
  };
  auto enc_last_chunk = [&](double x) {  // enc(x + (sum w)*delta)
    return ope.EncryptReal(x + w_sum * meta.delta);
  };

  OpessRange range;
  const auto it = meta.ordinals.find(literal);
  if (it != meta.ordinals.end()) {
    // Known value: Figure 7(a) verbatim.
    const double x = image_of(static_cast<size_t>(it->second - 1));
    switch (op) {
      case CompOp::kEq:
        range.lo = enc_first_chunk(x);
        range.hi = enc_last_chunk(x);
        return range;
      case CompOp::kLt:
        range.hi = enc_first_chunk(x) - 1;
        return range;
      case CompOp::kLe:
        range.hi = enc_last_chunk(x);
        return range;
      case CompOp::kGt:
        range.lo = enc_last_chunk(x) + 1;
        return range;
      case CompOp::kGe:
        range.lo = enc_first_chunk(x);
        return range;
      case CompOp::kNe:
        break;
    }
    return Status::Internal("unreachable");
  }

  // Unseen literal: resolve against its neighbours in the active domain —
  // v < literal is exactly v <= pred(literal), v > literal is exactly
  // v >= succ(literal). (Fig. 7a assumes the literal occurs; this is the
  // natural extension that keeps translation exact for arbitrary literals.)
  const size_t pos = static_cast<size_t>(
      std::lower_bound(meta.sorted_values.begin(), meta.sorted_values.end(),
                       literal, ValueLess) -
      meta.sorted_values.begin());
  switch (op) {
    case CompOp::kEq:
      range.empty = true;
      return range;
    case CompOp::kLt:
    case CompOp::kLe:
      if (pos == 0) {
        range.empty = true;
      } else {
        range.hi = enc_last_chunk(image_of(pos - 1));
      }
      return range;
    case CompOp::kGt:
    case CompOp::kGe:
      if (pos == meta.sorted_values.size()) {
        range.empty = true;
      } else {
        range.lo = enc_first_chunk(image_of(pos));
      }
      return range;
    case CompOp::kNe:
      break;
  }
  return Status::Internal("unreachable");
}

}  // namespace xcrypt
