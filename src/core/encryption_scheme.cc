#include "core/encryption_scheme.h"

#include <algorithm>
#include <set>

#include "core/constraint_graph.h"
#include "core/vertex_cover.h"

namespace xcrypt {

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kOptimal:
      return "opt";
    case SchemeKind::kApproximate:
      return "app";
    case SchemeKind::kSub:
      return "sub";
    case SchemeKind::kTop:
      return "top";
  }
  return "?";
}

int64_t EncryptionScheme::SizeInNodes(const Document& doc) const {
  int64_t total = 0;
  for (NodeId root : block_roots) {
    total += doc.SubtreeSize(root);
    if (doc.IsLeaf(root)) total += 1;  // decoy
  }
  return total;
}

namespace {

/// Removes roots nested inside other roots and sorts in document order.
std::vector<NodeId> PruneNested(const Document& doc,
                                std::set<NodeId> roots) {
  std::vector<NodeId> out;
  for (NodeId r : roots) {
    bool subsumed = false;
    for (NodeId other : roots) {
      if (other != r && doc.IsAncestor(other, r)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) out.push_back(r);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<EncryptionScheme> BuildEncryptionScheme(
    const Document& doc, const std::vector<SecurityConstraint>& constraints,
    SchemeKind kind) {
  if (doc.empty()) {
    return Status::InvalidArgument("cannot build a scheme for an empty doc");
  }
  EncryptionScheme scheme;
  scheme.kind = kind;

  if (kind == SchemeKind::kTop) {
    scheme.block_roots = {doc.root()};
    return scheme;
  }

  const std::vector<ConstraintBinding> bindings =
      BindConstraints(doc, constraints);

  std::set<NodeId> roots;
  // 1. Node-type SCs: encrypt every bound subtree.
  for (const ConstraintBinding& b : bindings) {
    if (b.constraint.IsNodeType()) {
      roots.insert(b.context_nodes.begin(), b.context_nodes.end());
    }
  }

  // 2. Association SCs: vertex cover over the constraint graph.
  const ConstraintGraph graph = ConstraintGraph::Build(doc, bindings);
  std::vector<int> cover;
  if (kind == SchemeKind::kApproximate) {
    cover = ClarksonGreedyVertexCover(graph);
  } else {
    cover = ExactVertexCover(graph);  // kOptimal and the base for kSub
  }
  for (int v : cover) {
    const auto& vertex = graph.vertices()[v];
    scheme.covered_tags.push_back(vertex.tag);
    roots.insert(vertex.nodes.begin(), vertex.nodes.end());
  }

  if (kind == SchemeKind::kSub) {
    // Lift every chosen root to its parent (the root stays put).
    std::set<NodeId> lifted;
    for (NodeId r : roots) {
      const NodeId parent = doc.node(r).parent;
      lifted.insert(parent == kNullNode ? r : parent);
    }
    roots = std::move(lifted);
  }

  scheme.block_roots = PruneNested(doc, std::move(roots));
  return scheme;
}

bool SchemeEnforcesConstraints(
    const Document& doc, const std::vector<SecurityConstraint>& constraints,
    const EncryptionScheme& scheme) {
  std::set<NodeId> roots(scheme.block_roots.begin(),
                         scheme.block_roots.end());
  auto inside_block = [&](NodeId id) {
    if (roots.count(id) != 0) return true;
    for (NodeId p = doc.node(id).parent; p != kNullNode;
         p = doc.node(p).parent) {
      if (roots.count(p) != 0) return true;
    }
    return false;
  };

  for (const ConstraintBinding& b : BindConstraints(doc, constraints)) {
    if (b.constraint.IsNodeType()) {
      for (NodeId id : b.context_nodes) {
        if (!inside_block(id)) return false;
      }
      continue;
    }
    for (size_t i = 0; i < b.context_nodes.size(); ++i) {
      // For each (y1, y2) pair bound in this context, at least one side
      // must be encrypted (§4.1 condition (ii)).
      for (NodeId y1 : b.q1_nodes[i]) {
        for (NodeId y2 : b.q2_nodes[i]) {
          if (!inside_block(y1) && !inside_block(y2)) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace xcrypt
