#ifndef XCRYPT_CORE_METADATA_H_
#define XCRYPT_CORE_METADATA_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/encryptor.h"
#include "core/opess.h"
#include "crypto/keychain.h"
#include "index/btree.h"
#include "index/dsi.h"
#include "index/dsi_table.h"
#include "xml/document.h"

namespace xcrypt {

/// Server-side metadata M (§5): the structural index (DSI index table +
/// encryption block table) and the value index (one OPESS B-tree per
/// encrypted leaf tag, keyed by the tag's pseudonym token).
struct Metadata {
  DsiTable dsi_table;
  BlockTable block_table;
  /// tag token -> OPESS B-tree of <evalue, Bid> entries.
  std::map<std::string, BPlusTree> value_indexes;
  /// Interval of every *public* (unencrypted) node -> skeleton NodeId, so
  /// the server can ship plaintext results. Public by construction.
  std::map<Interval, NodeId> public_interval_to_node;

  int64_t ByteSize() const;
};

/// Client-side private state produced while building metadata; required for
/// query translation (§6.1) and never sent to the server.
struct ClientIndexMeta {
  /// Tags (with '@' prefix for attributes) that occur encrypted; their
  /// query tokens must be pseudonymized.
  std::map<std::string, std::string> tag_tokens;
  /// Tags that occur publicly (outside every block). A tag can be in both
  /// sets when node-type SCs encrypt only some of its occurrences.
  std::set<std::string> public_tags;
  /// OPESS parameters per indexed tag (plaintext tag key).
  std::map<std::string, OpessTagMeta> opess;
  /// The DSI assignment (kept by the client; also useful for audits).
  DsiIndex dsi;
};

/// Everything the Host step produces.
struct HostedMetadata {
  Metadata server;
  ClientIndexMeta client;
};

/// Builds the complete metadata for an encrypted document (§5):
///  - DSI intervals on the *original* document with key-derived weights;
///  - the DSI index table with pseudonymized tokens for encrypted tags and
///    grouping of adjacent same-tag nodes within one block (§5.1.1);
///  - the encryption block table (block id -> representative interval);
///  - one OPESS B-tree per encrypted leaf/attribute tag (§5.2).
Result<HostedMetadata> BuildMetadata(const Document& doc,
                                     const EncryptionResult& enc,
                                     const KeyChain& keys);

/// Token under which a (possibly attribute) tag appears in the DSI table:
/// the plaintext name for public tags, the Vernam pseudonym for tags that
/// occur encrypted. `qualified_tag` uses the '@' prefix convention.
std::string TagToken(const ClientIndexMeta& meta,
                     const std::string& qualified_tag);

/// One grouped DSI-table entry (§5.1.1): adjacent same-tag children inside
/// the same encryption block collapse into a single interval.
struct DsiRunEntry {
  std::string token;
  Interval interval;
};

/// Appends the grouped DSI-table entries contributed by `parent`'s child
/// list (§5.1.1 runs). `token_of` maps a child NodeId to its table token.
/// Shared by the bulk build and the incremental update path, which diffs
/// a parent's contributions before/after a structural edit.
void AppendRunContributions(const Document& doc,
                            const std::vector<int>& block_of_node,
                            const DsiIndex& dsi, NodeId parent,
                            const std::function<std::string(NodeId)>& token_of,
                            std::vector<DsiRunEntry>* out);

}  // namespace xcrypt

#endif  // XCRYPT_CORE_METADATA_H_
