#ifndef XCRYPT_CORE_QUERY_TRANSLATOR_H_
#define XCRYPT_CORE_QUERY_TRANSLATOR_H_

#include "common/status.h"
#include "core/metadata.h"
#include "core/translated_query.h"
#include "crypto/keychain.h"
#include "xpath/ast.h"

namespace xcrypt {

/// Client-side query translation (§6.1): replaces tags and value constraints
/// with their encrypted forms while preserving the query structure.
///
///  - Tags that occur encrypted become their Vernam pseudonym (the same
///    tokens used when building the DSI index table).
///  - A value constraint on an OPESS-indexed tag becomes a ciphertext range
///    per Figure 7(a).
///  - Value constraints on public tags stay plaintext (the server evaluates
///    them against the unencrypted skeleton).
class QueryTranslator {
 public:
  QueryTranslator(const KeyChain* keys, const ClientIndexMeta* meta)
      : keys_(keys), meta_(meta) {}

  /// Translates Q into Qs. Fails for constraints that cannot be evaluated
  /// server-side (e.g. `!=` on an encrypted value).
  Result<TranslatedQuery> Translate(const PathExpr& query) const;

 private:
  Result<std::vector<TranslatedStep>> TranslateSteps(
      const std::vector<Step>& steps) const;

  const KeyChain* keys_;
  const ClientIndexMeta* meta_;
};

}  // namespace xcrypt

#endif  // XCRYPT_CORE_QUERY_TRANSLATOR_H_
