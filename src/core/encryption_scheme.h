#ifndef XCRYPT_CORE_ENCRYPTION_SCHEME_H_
#define XCRYPT_CORE_ENCRYPTION_SCHEME_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/security_constraint.h"
#include "xml/document.h"

namespace xcrypt {

/// Encryption granularities evaluated in §7.1 of the paper.
enum class SchemeKind {
  kOptimal,      ///< "opt": exact minimum-weight vertex cover choice
  kApproximate,  ///< "app": Clarkson greedy 2-approximation choice
  kSub,          ///< "sub": parents of the opt scheme's encrypted nodes
  kTop,          ///< "top": the whole document as one block
};

const char* SchemeKindName(SchemeKind kind);

/// An encryption scheme: the identification of the elements to encrypt
/// (§3.1). Each block root's entire subtree becomes one encryption block;
/// encrypted leaf elements get an encryption decoy (§4.1).
struct EncryptionScheme {
  SchemeKind kind = SchemeKind::kOptimal;
  /// Subtree roots to encrypt, in document order, with nested roots pruned
  /// (a root inside another root's subtree is subsumed by it).
  std::vector<NodeId> block_roots;
  /// Tags chosen by the vertex cover (empty for kTop), for reporting.
  std::vector<std::string> covered_tags;

  /// Scheme size per Definition 4.1: total number of nodes across blocks,
  /// counting one decoy per encrypted leaf element.
  int64_t SizeInNodes(const Document& doc) const;
};

/// Constructs the encryption scheme of the given granularity for `doc`
/// under `constraints`:
///   1. every node bound by a node-type SC is encrypted (whole subtree);
///   2. for association SCs, a vertex cover of the constraint graph picks
///      which leg tags to encrypt (exact for kOptimal, Clarkson greedy for
///      kApproximate); kSub lifts the opt choice to parents; kTop encrypts
///      the root.
/// Fails if `doc` is empty or a constraint binds no nodes is fine (no-op).
Result<EncryptionScheme> BuildEncryptionScheme(
    const Document& doc, const std::vector<SecurityConstraint>& constraints,
    SchemeKind kind);

/// True if `scheme` enforces every constraint on `doc` per §4.1: node-type
/// bindings are inside blocks, and for each association pair at least one
/// side is inside a block. Used by tests and the security auditor.
bool SchemeEnforcesConstraints(
    const Document& doc, const std::vector<SecurityConstraint>& constraints,
    const EncryptionScheme& scheme);

}  // namespace xcrypt

#endif  // XCRYPT_CORE_ENCRYPTION_SCHEME_H_
