#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace xcrypt {
namespace obs {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum_us += other.sum_us;
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

uint64_t HistogramSnapshot::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

uint64_t HistogramSnapshot::QuantileUpperBoundUs(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

int Histogram::BucketOf(uint64_t value_us) {
  const int width = std::bit_width(value_us);
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

void Histogram::Observe(double value_us) {
  if (!(value_us > 0.0)) value_us = 0.0;  // negatives and NaN clamp to 0
  const uint64_t v = static_cast<uint64_t>(value_us);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(v, std::memory_order_relaxed);
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    bool found = false;
    for (auto& [mine, total] : counters) {
      if (mine == name) {
        total += value;
        found = true;
        break;
      }
    }
    if (!found) counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : other.gauges) {
    bool found = false;
    for (auto& [mine, total] : gauges) {
      if (mine == name) {
        total += value;
        found = true;
        break;
      }
    }
    if (!found) gauges.emplace_back(name, value);
  }
  for (const auto& [name, hist] : other.histograms) {
    bool found = false;
    for (auto& [mine, total] : histograms) {
      if (mine == name) {
        total.Merge(hist);
        found = true;
        break;
      }
    }
    if (!found) histograms.emplace_back(name, hist);
  }
}

std::string MetricsSnapshot::RenderJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ", ";
    first = false;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "\"%s\": {\"count\": %llu, \"sum_us\": %llu, "
                  "\"mean_us\": %.1f, \"p50_us\": %llu, \"p99_us\": %llu, "
                  "\"buckets\": [",
                  name.c_str(),
                  static_cast<unsigned long long>(hist.count),
                  static_cast<unsigned long long>(hist.sum_us),
                  hist.MeanUs(),
                  static_cast<unsigned long long>(
                      hist.QuantileUpperBoundUs(0.5)),
                  static_cast<unsigned long long>(
                      hist.QuantileUpperBoundUs(0.99)));
    out += head;
    // Trailing all-zero buckets are elided to keep dumps small.
    int last = HistogramSnapshot::kNumBuckets - 1;
    while (last >= 0 && hist.buckets[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(hist.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->Snapshot());
  }
  return snap;
}

}  // namespace obs
}  // namespace xcrypt
