#ifndef XCRYPT_OBS_METRICS_H_
#define XCRYPT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xcrypt {
namespace obs {

/// Monotonic named counter. Add/Value are lock-free; relaxed order is
/// enough because counters are statistics, not synchronization.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Named instantaneous level (queue depth, resident engines): goes up and
/// down, snapshots report the current value rather than a running total.
/// Same lock-free relaxed-atomic discipline as Counter.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a histogram, detached from the atomics — the
/// unit that crosses the wire in stats responses and merges across
/// servers/intervals. Merge is associative and commutative (it is a
/// per-bucket sum), so snapshots can be combined in any order.
struct HistogramSnapshot {
  /// Power-of-two buckets: bucket i counts values v (in microseconds,
  /// rounded down) with bit_width(v) == i, i.e. bucket 0 holds v == 0,
  /// bucket i >= 1 holds [2^(i-1), 2^i). 40 buckets reach ~2^39us ≈ 6
  /// days; anything larger lands in the last bucket.
  static constexpr int kNumBuckets = 40;

  uint64_t count = 0;
  uint64_t sum_us = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  void Merge(const HistogramSnapshot& other);

  /// Inclusive upper bound of bucket `i` (2^i - 1 microseconds).
  static uint64_t BucketUpperBound(int i);

  /// Value at or below which a fraction `q` (0..1] of observations fall,
  /// estimated as the upper bound of the covering bucket. 0 when empty.
  uint64_t QuantileUpperBoundUs(double q) const;

  double MeanUs() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / count;
  }
};

/// Log-bucketed latency histogram. Observe is lock-free: one atomic add
/// into the value's power-of-two bucket plus the count/sum counters — the
/// fast path a server thread hits on every request.
class Histogram {
 public:
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

  void Observe(double value_us);

  /// Bucket index a value lands in (exposed for tests).
  static int BucketOf(uint64_t value_us);

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Everything a registry held at one instant.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Per-name merge (counters add, gauges add — levels across disjoint
  /// daemons sum, histograms Merge) — combines snapshots from several
  /// registries or periodic scrapes.
  void Merge(const MetricsSnapshot& other);

  /// Flat JSON: {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count, sum_us, mean_us, p50_us, p99_us, buckets: [...]}}}.
  std::string RenderJson() const;
};

/// Named counters and histograms for one process component (each
/// NetServer owns one; a process-wide instance is available via
/// Global()). Instrument lookup interns the name under a mutex ONCE per
/// call site that bothers to re-look-up; callers on hot paths cache the
/// returned pointer, which stays valid for the registry's lifetime, and
/// from then on touch only lock-free atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry for components without a natural owner.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // Node-based maps: pointers handed out stay stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace xcrypt

#endif  // XCRYPT_OBS_METRICS_H_
