#ifndef XCRYPT_OBS_TRACE_H_
#define XCRYPT_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

namespace xcrypt {
namespace obs {

/// One named phase with its accumulated wall time — the unit in which
/// span breakdowns travel (across the wire in query responses, and into
/// QueryCosts projections).
struct PhaseTiming {
  std::string name;
  double elapsed_us = 0.0;
};

/// One timed region of a query's life. Spans form a forest: `parent` is
/// the index of the enclosing span inside the owning Trace (kNoParent for
/// top-level spans). `start_us` is the offset from the trace epoch, so
/// spans are totally ordered in time as well as nested.
struct SpanRecord {
  std::string name;
  int parent = -1;
  double start_us = 0.0;
  double elapsed_us = 0.0;
  bool closed = false;
};

/// Hierarchical timed spans for ONE query evaluation, carried through
/// every layer of the query path (translate → index-lookup →
/// structural-join → predicate-batch → assemble → transmit → decrypt →
/// splice → postprocess). A Trace is owned by a single caller and is NOT
/// thread-safe: one query, one thread, one trace. The disabled fast path
/// is a null Trace pointer — Span guards built over nullptr do nothing
/// and cost a pointer test.
class Trace {
 public:
  static constexpr int kNoParent = -1;
  /// Sentinel for Record(): attach under the currently open span.
  static constexpr int kCurrent = -2;

  Trace() : epoch_(Clock::now()) {}

  /// Opens a span nested under the currently open one; returns its index.
  int Open(std::string_view name) {
    SpanRecord span;
    span.name = std::string(name);
    span.parent = open_.empty() ? kNoParent : open_.back();
    span.start_us = SinceEpochUs();
    const int id = static_cast<int>(spans_.size());
    spans_.push_back(std::move(span));
    open_.push_back(id);
    return id;
  }

  /// Closes span `id`, fixing its elapsed time. Closing out of order pops
  /// every span opened after it (a guard destroyed early closes its
  /// children), so the open stack stays consistent.
  void Close(int id) {
    if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
    while (!open_.empty()) {
      const int top = open_.back();
      open_.pop_back();
      if (!spans_[top].closed) {
        spans_[top].elapsed_us = SinceEpochUs() - spans_[top].start_us;
        spans_[top].closed = true;
      }
      if (top == id) break;
    }
  }

  /// Records an externally measured interval as an already-closed span —
  /// how wire-reported durations (server phases, transmission) enter the
  /// client's trace. `parent` is a span index, kNoParent, or kCurrent.
  /// Returns the new span's index.
  int Record(std::string_view name, double elapsed_us, int parent = kCurrent) {
    SpanRecord span;
    span.name = std::string(name);
    span.parent = (parent == kCurrent)
                      ? (open_.empty() ? kNoParent : open_.back())
                      : parent;
    // Place the recorded interval so it *ends* now: externally measured
    // work happened just before it was reported.
    const double now = SinceEpochUs();
    span.start_us = now > elapsed_us ? now - elapsed_us : 0.0;
    span.elapsed_us = elapsed_us;
    span.closed = true;
    spans_.push_back(std::move(span));
    return static_cast<int>(spans_.size()) - 1;
  }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }

  /// Total elapsed time over every closed span named `name`.
  double TotalUs(std::string_view name) const;

  /// Per-name elapsed totals over the direct children of span `parent`,
  /// in first-appearance order — the phase decomposition of one span
  /// (e.g. server time into join / OPESS probe / assembly).
  std::vector<PhaseTiming> ChildPhaseTotals(int parent) const;

  /// Indented rendering, one span per line: "  name  12.3us".
  std::string Render() const;

 private:
  using Clock = std::chrono::steady_clock;

  double SinceEpochUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  Clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
  std::vector<int> open_;  ///< stack of open span indices
};

/// RAII guard for one span. Null trace → complete no-op: the disabled
/// path compiles to a pointer test, which is what keeps tracing
/// affordable to leave compiled in everywhere.
class Span {
 public:
  Span() = default;
  Span(Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->Open(name);
  }
  ~Span() { End(); }

  Span(Span&& other) noexcept : trace_(other.trace_), id_(other.id_) {
    other.trace_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      trace_ = other.trace_;
      id_ = other.id_;
      other.trace_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes the span early (idempotent).
  void End() {
    if (trace_ != nullptr) {
      trace_->Close(id_);
      trace_ = nullptr;
    }
  }

  /// Index of this span in the trace, or Trace::kNoParent when disabled.
  int id() const { return trace_ != nullptr ? id_ : Trace::kNoParent; }

 private:
  Trace* trace_ = nullptr;
  int id_ = Trace::kNoParent;
};

/// Per-call evaluation context threaded through the engine surface:
/// an optional trace to fill and an optional deadline to respect. A null
/// QueryContext* (the default everywhere) means "no tracing, no
/// deadline" and takes the fast path.
struct QueryContext {
  Trace* trace = nullptr;
  /// Absolute steady-clock point after which engines abort with
  /// Unavailable instead of continuing to burn server time.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
  bool Expired() const {
    return has_deadline() && std::chrono::steady_clock::now() > deadline;
  }

  /// Context expiring `seconds` from now.
  static QueryContext WithTimeout(double seconds, Trace* trace = nullptr) {
    QueryContext ctx;
    ctx.trace = trace;
    ctx.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(seconds));
    return ctx;
  }
};

/// Trace pointer of an optional context (nullptr-safe).
inline Trace* TraceOf(QueryContext* ctx) {
  return ctx != nullptr ? ctx->trace : nullptr;
}
inline const Trace* TraceOf(const QueryContext* ctx) {
  return ctx != nullptr ? ctx->trace : nullptr;
}

}  // namespace obs
}  // namespace xcrypt

#endif  // XCRYPT_OBS_TRACE_H_
