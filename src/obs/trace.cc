#include "obs/trace.h"

#include <cstdio>

namespace xcrypt {
namespace obs {

double Trace::TotalUs(std::string_view name) const {
  double total = 0.0;
  for (const SpanRecord& span : spans_) {
    if (span.closed && span.name == name) total += span.elapsed_us;
  }
  return total;
}

std::vector<PhaseTiming> Trace::ChildPhaseTotals(int parent) const {
  std::vector<PhaseTiming> phases;
  for (const SpanRecord& span : spans_) {
    if (span.parent != parent || !span.closed) continue;
    PhaseTiming* slot = nullptr;
    for (PhaseTiming& p : phases) {
      if (p.name == span.name) {
        slot = &p;
        break;
      }
    }
    if (slot == nullptr) {
      phases.push_back({span.name, 0.0});
      slot = &phases.back();
    }
    slot->elapsed_us += span.elapsed_us;
  }
  return phases;
}

std::string Trace::Render() const {
  // Depth of each span via its parent chain (spans_ is in open order, so
  // parents always precede children).
  std::vector<int> depth(spans_.size(), 0);
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent >= 0) depth[i] = depth[spans_[i].parent] + 1;
  }
  std::string out;
  for (size_t i = 0; i < spans_.size(); ++i) {
    for (int d = 0; d < depth[i]; ++d) out += "  ";
    char line[64];
    std::snprintf(line, sizeof(line), "  %.1fus%s", spans_[i].elapsed_us,
                  spans_[i].closed ? "" : " (open)");
    out += spans_[i].name + line + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace xcrypt
