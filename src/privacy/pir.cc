#include "privacy/pir.h"

#include <cstring>

namespace xcrypt {
namespace privacy {

Status PirParams::Validate() const {
  if (num_records == 0 || num_records > kMaxRecords) {
    return Status::InvalidArgument("pir section record count out of range");
  }
  if (record_bytes == 0 || record_bytes > kMaxRecordBytes) {
    return Status::InvalidArgument("pir record size out of range");
  }
  if (dim == 0 || dim > 4096) {
    return Status::InvalidArgument("pir dimension out of range");
  }
  return Status::Ok();
}

void ExpandMatrixRow(const PirParams& params, uint32_t row, uint32_t* out) {
  // Per-row SplitMix64 stream: decorrelate rows by mixing the row index
  // into the seed before streaming, so row j is O(d) to produce on demand.
  uint64_t state = params.seed ^ (0x9e3779b97f4a7c15ULL * (row + 1));
  state = SplitMix64(state);
  for (uint32_t t = 0; t < params.dim; t += 2) {
    const uint64_t word = SplitMix64(state);
    out[t] = static_cast<uint32_t>(word);
    if (t + 1 < params.dim) out[t + 1] = static_cast<uint32_t>(word >> 32);
  }
}

Result<PirHostedSection> PirHostedSection::Build(PirParams params,
                                                std::vector<uint8_t> records) {
  XCRYPT_RETURN_NOT_OK(params.Validate());
  const size_t expect =
      static_cast<size_t>(params.num_records) * params.record_bytes;
  if (records.size() != expect) {
    return Status::InvalidArgument("pir section bytes do not match params");
  }
  PirHostedSection section;
  section.params_ = params;
  section.records_ = std::move(records);
  // H = D·A, streamed one A-row at a time: H[i][t] += D[j][i] * A[j][t].
  section.hint_.assign(
      static_cast<size_t>(params.record_bytes) * params.dim, 0);
  std::vector<uint32_t> row(params.dim);
  for (uint32_t j = 0; j < params.num_records; ++j) {
    ExpandMatrixRow(params, j, row.data());
    const uint8_t* record =
        section.records_.data() + static_cast<size_t>(j) * params.record_bytes;
    for (uint32_t i = 0; i < params.record_bytes; ++i) {
      const uint32_t d = record[i];
      if (d == 0) continue;
      uint32_t* hint_row = section.hint_.data() +
                           static_cast<size_t>(i) * params.dim;
      for (uint32_t t = 0; t < params.dim; ++t) {
        hint_row[t] += d * row[t];  // mod 2^32 by unsigned wraparound
      }
    }
  }
  return section;
}

Result<std::vector<uint32_t>> PirHostedSection::Answer(
    std::span<const uint32_t> query) const {
  if (query.size() != params_.num_records) {
    return Status::InvalidArgument("pir query length mismatch");
  }
  std::vector<uint32_t> answer(params_.record_bytes, 0);
  for (uint32_t j = 0; j < params_.num_records; ++j) {
    const uint32_t u = query[j];
    if (u == 0) continue;
    const uint8_t* record =
        records_.data() + static_cast<size_t>(j) * params_.record_bytes;
    for (uint32_t i = 0; i < params_.record_bytes; ++i) {
      answer[i] += record[i] * u;
    }
  }
  return answer;
}

Result<PirClientSection> PirClientSection::Create(
    PirParams params, std::vector<uint32_t> hint) {
  XCRYPT_RETURN_NOT_OK(params.Validate());
  if (hint.size() !=
      static_cast<size_t>(params.record_bytes) * params.dim) {
    return Status::Corruption("pir hint size does not match params");
  }
  return PirClientSection(params, std::move(hint));
}

Result<PirQuery> PirClientSection::MakeQuery(uint32_t index, Rng& rng,
                                             bool privately) const {
  if (index >= params_.num_records) {
    return Status::InvalidArgument("pir index out of range");
  }
  PirQuery query;
  query.index = index;
  query.u.assign(params_.num_records, 0);
  constexpr uint32_t kDelta = static_cast<uint32_t>(PirParams::kDelta);
  if (!privately) {
    // Plain selector: transparent, noiseless, correct at any section size.
    query.u[index] = kDelta;
    return query;
  }
  if (!params_.SupportsPrivateFetch()) {
    return Status::InvalidArgument(
        "section too large for a private fetch (noise bound); use the "
        "plain selector");
  }
  query.secret.resize(params_.dim);
  for (uint32_t t = 0; t < params_.dim; ++t) {
    query.secret[t] = static_cast<uint32_t>(rng.NextU64());
  }
  std::vector<uint32_t> row(params_.dim);
  for (uint32_t j = 0; j < params_.num_records; ++j) {
    ExpandMatrixRow(params_, j, row.data());
    uint32_t dot = 0;
    for (uint32_t t = 0; t < params_.dim; ++t) dot += row[t] * query.secret[t];
    // Ternary error: ±1 each with probability 1/4.
    const uint64_t coin = rng.NextU64() & 3;
    if (coin == 0) dot += 1;
    else if (coin == 1) dot -= 1;
    query.u[j] = dot;
  }
  query.u[index] += kDelta;
  return query;
}

Result<std::vector<uint8_t>> PirClientSection::Decode(
    const PirQuery& query, std::span<const uint32_t> answer) const {
  if (answer.size() != params_.record_bytes) {
    return Status::Corruption("pir answer length mismatch");
  }
  std::vector<uint8_t> record(params_.record_bytes);
  constexpr uint32_t kDelta = static_cast<uint32_t>(PirParams::kDelta);
  for (uint32_t i = 0; i < params_.record_bytes; ++i) {
    uint32_t x = answer[i];
    if (!query.secret.empty()) {
      const uint32_t* hint_row =
          hint_.data() + static_cast<size_t>(i) * params_.dim;
      uint32_t dot = 0;
      for (uint32_t t = 0; t < params_.dim; ++t) {
        dot += hint_row[t] * query.secret[t];
      }
      x -= dot;
    }
    // q/Δ = p exactly, so rounding under wraparound is a shift: noise up
    // to ±Δ/2 moves x + Δ/2 within the same Δ-slot of the target byte.
    record[i] = static_cast<uint8_t>((x + (kDelta >> 1)) >> 24);
  }
  return record;
}

std::string OpessRootSection(const std::string& token) {
  return "opess-root:" + token;
}

std::string ParseOpessRootSection(const std::string& section) {
  constexpr char kPrefix[] = "opess-root:";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (section.size() <= kPrefixLen ||
      section.compare(0, kPrefixLen, kPrefix) != 0) {
    return std::string();
  }
  return section.substr(kPrefixLen);
}

}  // namespace privacy
}  // namespace xcrypt
