#ifndef XCRYPT_PRIVACY_PIR_H_
#define XCRYPT_PRIVACY_PIR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace xcrypt {
namespace privacy {

/// Single-server computational PIR over a fixed-size-record section, in
/// the shape of the Sunscreen exemplar (SNIPPETS.md snippet 3): the client
/// sends an encrypted one-hot selection vector, the server answers with
/// the database × vector product, and the client strips the encryption to
/// recover exactly the selected record. The server performs the identical
/// dot-product work for every index, so which record was fetched is
/// computationally hidden.
///
/// The encryption here is LWE rather than FHE (no lattice library ships
/// with this repo, and common/bigint has no modular exponentiation for a
/// Paillier-style variant), with every parameter fixed so all arithmetic
/// is native uint32 wraparound (q = 2^32):
///
///   - secret dimension d = 512, modulus q = 2^32, plaintext p = 256,
///     scaling Δ = q/p² = 2^24, ternary errors e ∈ {-1, 0, +1};
///   - the public matrix A (n × d) is expanded row-by-row from a public
///     seed (SplitMix64), so neither side ever materializes it;
///   - setup ships the hint H = D·A (record_bytes × d) once per section;
///   - query: u = A·s + e + Δ·1_{j*} ∈ Z_q^n;
///   - answer: a = D·u ∈ Z_q^{record_bytes};
///   - decode: byte_i = round((a_i − ⟨H_i, s⟩)/Δ) mod 256.
///
/// Correctness needs the accumulated noise |Σ_j D_ij·e_j| ≤ 255·n to stay
/// under Δ/2 = 2^23, which bounds sections to n ≤ 16384 records — exactly
/// the "small hot sections" (OPESS B-tree root slots, the per-block
/// generation table) this primitive targets. Larger sections must use the
/// plain selector (MakeQuery with privately=false): the same wire shape
/// and the same server work, but a transparent Δ·1_{j*} vector with no
/// noise — correct at any size, private at none.
struct PirParams {
  uint32_t num_records = 0;
  uint32_t record_bytes = 0;
  uint32_t dim = kDefaultDim;
  /// Public seed the A matrix is expanded from. Server-chosen at section
  /// build; shipped in the setup response.
  uint64_t seed = 0;

  static constexpr uint32_t kDefaultDim = 512;
  /// Noise-bound cap for *private* queries (255·n < Δ/2 with margin).
  static constexpr uint32_t kMaxPrivateRecords = 1u << 14;
  /// Hosting caps — a section beyond these is a configuration error, not
  /// a hostile frame, but the bounds also guard the wire decoder.
  static constexpr uint32_t kMaxRecords = 1u << 20;
  static constexpr uint32_t kMaxRecordBytes = 256;
  static constexpr uint64_t kDelta = 1ull << 24;

  int64_t SectionBytes() const {
    return static_cast<int64_t>(num_records) * record_bytes;
  }
  /// True when a *private* (noise-carrying) query decodes correctly.
  bool SupportsPrivateFetch() const {
    return num_records > 0 && num_records <= kMaxPrivateRecords;
  }

  Status Validate() const;
};

/// Fills `out` (params.dim values) with row `row` of the public matrix A.
/// Deterministic in (seed, row); both halves stream rows instead of
/// storing the n×d matrix.
void ExpandMatrixRow(const PirParams& params, uint32_t row, uint32_t* out);

/// The server half: the section's records plus the precomputed hint.
/// Built once per (section, data generation) and cached by ServerEngine;
/// Answer() is the per-fetch work.
class PirHostedSection {
 public:
  /// `records` is num_records × record_bytes, row-major per record.
  /// Computes the hint (n·r·d u32 multiplies, once).
  static Result<PirHostedSection> Build(PirParams params,
                                        std::vector<uint8_t> records);

  /// a = D·u. Rejects a query whose length is not num_records.
  Result<std::vector<uint32_t>> Answer(std::span<const uint32_t> query) const;

  const PirParams& params() const { return params_; }
  /// H = D·A, record_bytes × dim row-major. Shipped in the setup reply.
  const std::vector<uint32_t>& hint() const { return hint_; }

 private:
  PirParams params_;
  std::vector<uint8_t> records_;
  std::vector<uint32_t> hint_;
};

/// One fetch's client state: the vector that goes to the server and the
/// secret that never leaves. A plain (non-private) selector has an empty
/// secret.
struct PirQuery {
  std::vector<uint32_t> u;
  std::vector<uint32_t> secret;
  uint32_t index = 0;
};

/// The client half, constructed from the setup reply (params + hint).
class PirClientSection {
 public:
  static Result<PirClientSection> Create(PirParams params,
                                         std::vector<uint32_t> hint);

  /// Builds the selection vector for record `index`. With
  /// `privately` = true the vector is LWE-encrypted (requires
  /// params().SupportsPrivateFetch()); with false it is the transparent
  /// Δ·1_{index} selector — same server cost, no privacy.
  Result<PirQuery> MakeQuery(uint32_t index, Rng& rng,
                             bool privately = true) const;

  /// Recovers the fetched record's bytes from the server's answer.
  Result<std::vector<uint8_t>> Decode(const PirQuery& query,
                                      std::span<const uint32_t> answer) const;

  const PirParams& params() const { return params_; }

 private:
  PirClientSection(PirParams params, std::vector<uint32_t> hint)
      : params_(params), hint_(std::move(hint)) {}

  PirParams params_;
  std::vector<uint32_t> hint_;
};

/// Section names hosted by every ServerEngine (DESIGN.md §17):
///  - kBlockMetaSection: one record per encryption block —
///    u32 generation, u32 ciphertext size (little-endian);
///  - OpessRootSection(token): the root-level separator keys of the
///    token's OPESS B-tree, one i64 key per record.
inline constexpr char kBlockMetaSection[] = "block-meta";
inline constexpr uint32_t kBlockMetaRecordBytes = 8;
inline constexpr uint32_t kOpessRootRecordBytes = 8;
std::string OpessRootSection(const std::string& token);
/// The token of an "opess-root:<token>" section name, or "" otherwise.
std::string ParseOpessRootSection(const std::string& section);

}  // namespace privacy
}  // namespace xcrypt

#endif  // XCRYPT_PRIVACY_PIR_H_
