#include "privacy/shape.h"

#include <algorithm>
#include <cstdio>

#include "common/binary_io.h"
#include "net/wire.h"

namespace xcrypt {
namespace privacy {

namespace {

constexpr uint32_t kShapeLogMagic = 0x4C485358;  // "XSHL"
constexpr uint8_t kShapeLogVersion = 1;

}  // namespace

ShapeLog::ShapeLog(size_t capacity)
    : capacity_(std::clamp<size_t>(capacity, 1, kMaxCapacity)) {}

void ShapeLog::Record(const TranslatedQuery& query) {
  if (entries_.size() < capacity_) {
    entries_.push_back(query);
    return;
  }
  entries_[next_] = query;
  next_ = (next_ + 1) % capacity_;
}

TranslatedQuery ShapeLog::Sample(Rng& rng) const {
  return entries_[static_cast<size_t>(
      rng.UniformU64(0, entries_.size() - 1))];
}

std::vector<TranslatedQuery> ShapeLog::SampleMany(int k, Rng& rng) const {
  std::vector<TranslatedQuery> out;
  if (empty() || k <= 0) return out;
  out.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) out.push_back(Sample(rng));
  return out;
}

Bytes ShapeLog::Serialize() const {
  Bytes out;
  BinaryWriter w(&out);
  w.U32(kShapeLogMagic);
  w.U8(kShapeLogVersion);
  w.U32(static_cast<uint32_t>(entries_.size()));
  for (const TranslatedQuery& query : entries_) {
    w.Blob(net::EncodeTranslatedQuery(query));
  }
  return out;
}

Result<ShapeLog> ShapeLog::Deserialize(const Bytes& image, size_t capacity) {
  BinaryReader r(image);
  if (r.U32() != kShapeLogMagic) {
    return Status::Corruption("bad shape log magic");
  }
  if (r.U8() != kShapeLogVersion) {
    return Status::Unsupported("unknown shape log version");
  }
  const uint32_t count = r.U32();
  if (!r.CanHold(count, 4)) {
    return Status::Corruption("bad shape log entry count");
  }
  ShapeLog log(capacity);
  for (uint32_t i = 0; i < count; ++i) {
    const Bytes blob = r.Blob();
    if (r.failed()) return Status::Corruption("truncated shape log entry");
    auto query = net::DecodeTranslatedQuery(blob);
    if (!query.ok()) return query.status();
    log.Record(*query);
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in shape log");
  return log;
}

Status ShapeLog::SaveToFile(const std::string& path) const {
  const Bytes image = Serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open shape log for writing: " + tmp);
  }
  const size_t written = image.empty()
                             ? 0
                             : std::fwrite(image.data(), 1, image.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != image.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to shape log: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename shape log into place: " + path);
  }
  return Status::Ok();
}

Result<ShapeLog> ShapeLog::LoadFromFile(const std::string& path,
                                        size_t capacity) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ShapeLog(capacity);  // first run: empty log
  Bytes image;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.insert(image.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("cannot read shape log: " + path);
  }
  return Deserialize(image, capacity);
}

}  // namespace privacy
}  // namespace xcrypt
