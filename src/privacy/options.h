#ifndef XCRYPT_PRIVACY_OPTIONS_H_
#define XCRYPT_PRIVACY_OPTIONS_H_

#include <cstdint>

#include "common/status.h"

namespace xcrypt {

/// Opt-in access-pattern protection knobs, carried by value inside
/// ExecOptions (and defaulted per-system by ClientTuning). Everything here
/// is off by default: the baseline protocol of §6 runs unchanged and pays
/// nothing.
///
/// What the mode protects against — and what it does not — is spelled out
/// in DESIGN.md §17. In one line: `decoys` hides WHICH of k+1 plausible
/// index probes is the real one, `pad_responses` hides which answer is the
/// real one by size, and the PIR fetch hides WHICH record of a small hot
/// section (OPESS B-tree root slots, the block-generation table) a client
/// inspects. None of it hides query *rate*, the target database, or the
/// shape distribution itself.
struct PrivacyOptions {
  /// Number of cover queries bundled with each real query (wire v7 probe
  /// batch). 0 disables batching entirely — the request goes out as a
  /// plain kQueryRequest, indistinguishable from a pre-v7 client. Decoys
  /// are sampled from the locally recorded query-shape distribution
  /// (privacy::ShapeLog), so a fresh system with no history sends fewer
  /// (possibly zero) decoys until shapes accumulate.
  int decoys = 0;

  /// Sections at or below this byte size are fetched with the LWE
  /// PirSelect primitive (privacy::PirClientSection); larger sections fall
  /// back to the plain selector (same wire shape and server cost, but a
  /// transparent selection vector — no privacy). 0 disables private
  /// fetches altogether.
  int64_t pir_threshold_bytes = 0;

  /// Pad every probe-batch response entry to the batch's quantum-rounded
  /// maximum, so response sizes cannot single out the real probe. Only
  /// meaningful with decoys > 0.
  bool pad_responses = true;

  bool enabled() const { return decoys > 0 || pir_threshold_bytes > 0; }

  /// Rejects nonsensical settings; mirrored into ClientTuning::Validate()
  /// so a bad config fails at Host()/Connect() instead of mid-query.
  Status Validate() const {
    if (decoys < 0 || decoys > kMaxDecoys) {
      return Status::InvalidArgument("decoys must be in [0, 256]");
    }
    if (pir_threshold_bytes < 0) {
      return Status::InvalidArgument("pir_threshold_bytes must be >= 0");
    }
    return Status::Ok();
  }

  /// Upper bound on decoys per query; also the wire-side cap on probe
  /// batch entries (a frame claiming more is hostile).
  static constexpr int kMaxDecoys = 256;
};

}  // namespace xcrypt

#endif  // XCRYPT_PRIVACY_OPTIONS_H_
