#include "privacy/fetcher.h"

namespace xcrypt {
namespace privacy {

SectionFetcher::SectionFetcher(PirTransport* transport,
                               int64_t pir_threshold_bytes, uint64_t seed)
    : transport_(transport),
      pir_threshold_bytes_(pir_threshold_bytes),
      rng_(seed) {}

Result<SectionFetcher::Section*> SectionFetcher::GetSection(
    const std::string& section) {
  auto it = sections_.find(section);
  if (it != sections_.end()) return &it->second;
  auto setup = transport_->PirSetup(section);
  if (!setup.ok()) return setup.status();
  auto client =
      PirClientSection::Create(setup->params, std::move(setup->hint));
  if (!client.ok()) return client.status();
  Section entry{std::move(*client), false};
  entry.privately = pir_threshold_bytes_ > 0 &&
                    entry.client.params().SectionBytes() <=
                        pir_threshold_bytes_ &&
                    entry.client.params().SupportsPrivateFetch();
  it = sections_.emplace(section, std::move(entry)).first;
  return &it->second;
}

Result<std::vector<uint8_t>> SectionFetcher::Fetch(const std::string& section,
                                                   uint32_t index) {
  auto entry = GetSection(section);
  if (!entry.ok()) return entry.status();
  auto query = (*entry)->client.MakeQuery(index, rng_, (*entry)->privately);
  if (!query.ok()) return query.status();
  auto answer = transport_->PirFetch(section, query->u);
  if (!answer.ok()) return answer.status();
  auto record = (*entry)->client.Decode(*query, *answer);
  if (!record.ok()) return record.status();
  if ((*entry)->privately) {
    ++private_fetches_;
  } else {
    ++plain_fetches_;
  }
  return record;
}

bool SectionFetcher::SectionPrivate(const std::string& section) const {
  auto it = sections_.find(section);
  return it != sections_.end() && it->second.privately;
}

uint32_t SectionFetcher::SectionRecords(const std::string& section) const {
  auto it = sections_.find(section);
  return it == sections_.end() ? 0 : it->second.client.params().num_records;
}

}  // namespace privacy
}  // namespace xcrypt
