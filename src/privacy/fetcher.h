#ifndef XCRYPT_PRIVACY_FETCHER_H_
#define XCRYPT_PRIVACY_FETCHER_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "privacy/pir.h"

namespace xcrypt {
namespace privacy {

/// The two RPCs a fetcher drives, implemented over the wire by
/// net::RemoteServerEngine (kPirSetup*/kPirFetch*, wire v7) and in-process
/// by tests directly over PirHostedSection.
class PirTransport {
 public:
  virtual ~PirTransport() = default;

  struct Setup {
    PirParams params;
    std::vector<uint32_t> hint;
  };

  /// Downloads a section's parameters + hint (once per section).
  virtual Result<Setup> PirSetup(const std::string& section) = 0;

  /// One selection fetch: ships `query` (num_records u32s), returns the
  /// record_bytes-long answer vector.
  virtual Result<std::vector<uint32_t>> PirFetch(
      const std::string& section, std::span<const uint32_t> query) = 0;
};

/// Fetches one fixed-size record of a named hosted section. The interface
/// deliberately says nothing about privacy: callers ask for (section,
/// index) and the implementation decides how the selection travels.
class BlockFetcher {
 public:
  virtual ~BlockFetcher() = default;
  virtual Result<std::vector<uint8_t>> Fetch(const std::string& section,
                                             uint32_t index) = 0;
};

/// The per-section chooser (PrivacyOptions::pir_threshold_bytes): a
/// section whose raw size fits under the threshold — and under the LWE
/// noise bound — is fetched privately; anything larger uses the plain
/// Δ·1_{j} selector, which costs the server exactly the same dot product
/// but hides nothing. Setup replies (params + hint) are cached per
/// section, so the hint download is paid once.
///
/// Not thread-safe; the owner (DasSystem) serializes access.
class SectionFetcher : public BlockFetcher {
 public:
  SectionFetcher(PirTransport* transport, int64_t pir_threshold_bytes,
                 uint64_t seed);

  Result<std::vector<uint8_t>> Fetch(const std::string& section,
                                     uint32_t index) override;

  /// Whether fetches of `section` travel privately. Unknown before the
  /// first Fetch touching the section (setup decides).
  bool SectionPrivate(const std::string& section) const;

  /// Record count of `section`, 0 before its first fetch.
  uint32_t SectionRecords(const std::string& section) const;

  uint64_t private_fetches() const { return private_fetches_; }
  uint64_t plain_fetches() const { return plain_fetches_; }

 private:
  struct Section {
    PirClientSection client;
    bool privately = false;
  };

  Result<Section*> GetSection(const std::string& section);

  PirTransport* transport_;
  int64_t pir_threshold_bytes_;
  Rng rng_;
  std::map<std::string, Section> sections_;
  uint64_t private_fetches_ = 0;
  uint64_t plain_fetches_ = 0;
};

}  // namespace privacy
}  // namespace xcrypt

#endif  // XCRYPT_PRIVACY_FETCHER_H_
