#ifndef XCRYPT_PRIVACY_PADDING_H_
#define XCRYPT_PRIVACY_PADDING_H_

#include <cstddef>
#include <cstdint>

namespace xcrypt {
namespace privacy {

/// Padding policy for probe batches (wire v7): every entry of a batch —
/// request probes and, when PrivacyOptions::pad_responses is set, response
/// answers — is padded with zero bytes to the batch maximum rounded up to
/// this quantum. Rounding to a quantum (rather than the exact maximum)
/// keeps repeated batches of slightly different queries the same size on
/// the wire, so an observer diffing consecutive batches learns at most
/// the quantum bucket, never the byte-exact shape.
inline constexpr size_t kPadQuantum = 64;

/// `size` rounded up to the next kPadQuantum multiple (minimum one
/// quantum, so even an empty entry occupies a full slot).
constexpr size_t PadToQuantum(size_t size) {
  const size_t q = kPadQuantum;
  return size == 0 ? q : ((size + q - 1) / q) * q;
}

}  // namespace privacy
}  // namespace xcrypt

#endif  // XCRYPT_PRIVACY_PADDING_H_
