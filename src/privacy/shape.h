#ifndef XCRYPT_PRIVACY_SHAPE_H_
#define XCRYPT_PRIVACY_SHAPE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "core/translated_query.h"

namespace xcrypt {
namespace privacy {

/// Bounded ring of recently issued translated queries — the per-database
/// query-shape distribution decoys are sampled from. Recorded locally by
/// the client and NEVER shipped: the server only ever sees the sampled
/// decoys, mixed uniformly into probe batches.
///
/// Decoys are verbatim replays of past real queries (sampled with
/// replacement), which makes them indistinguishable by construction: every
/// decoy is a query the client actually sent before, with the same token
/// pseudonyms, the same predicate structure, and the same plan-cache
/// behavior as a real repeat. A generative model would have to defend
/// every marginal of the shape distribution; replay sidesteps the problem
/// entirely at the cost of only ever covering the client with its own
/// history (an empty log yields no cover — see PrivacyOptions::decoys).
///
/// Not thread-safe; the owner (DasSystem) serializes access.
class ShapeLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kMaxCapacity = 65536;

  explicit ShapeLog(size_t capacity = kDefaultCapacity);

  /// Appends one real query's shape, evicting the oldest past capacity.
  void Record(const TranslatedQuery& query);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// One decoy, sampled uniformly with replacement. Requires !empty().
  TranslatedQuery Sample(Rng& rng) const;

  /// k decoys (with replacement). Returns fewer than k only when the log
  /// is empty (then zero).
  std::vector<TranslatedQuery> SampleMany(int k, Rng& rng) const;

  /// Persistence: versioned little-endian image (magic, version, count,
  /// length-prefixed wire-encoded queries). Save writes `path`.tmp then
  /// renames, so a crash never leaves a torn log; Load of a missing file
  /// returns an empty log (first run), a corrupt file an error.
  Bytes Serialize() const;
  static Result<ShapeLog> Deserialize(const Bytes& image, size_t capacity);
  Status SaveToFile(const std::string& path) const;
  static Result<ShapeLog> LoadFromFile(const std::string& path,
                                       size_t capacity = kDefaultCapacity);

 private:
  size_t capacity_;
  std::vector<TranslatedQuery> entries_;
  /// Ring cursor: next slot to overwrite once entries_ hit capacity.
  size_t next_ = 0;
};

}  // namespace privacy
}  // namespace xcrypt

#endif  // XCRYPT_PRIVACY_SHAPE_H_
