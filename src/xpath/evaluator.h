#ifndef XCRYPT_XPATH_EVALUATOR_H_
#define XCRYPT_XPATH_EVALUATOR_H_

#include <string>
#include <vector>

#include "xml/document.h"
#include "xpath/ast.h"

namespace xcrypt {

/// Compares a node's text value against a literal under `op`. The comparison
/// is numeric when both sides parse as numbers, lexicographic otherwise
/// (mirrors ValueLess in xml/stats.h).
bool CompareValues(const std::string& value, CompOp op,
                   const std::string& literal);

/// Tree-walking XPath evaluator over the plaintext document model.
///
/// This is the reference engine: it computes ground-truth answers for
/// integration tests, runs the client's post-processing step (§6.4, applying
/// the original query Q to decrypted blocks), and evaluates security
/// constraints' binding sets during encryption-scheme construction (§4.1).
class XPathEvaluator {
 public:
  explicit XPathEvaluator(const Document& doc) : doc_(doc) {}

  /// Evaluates an absolute path from the document root. `/a` matches the
  /// root element when its tag is `a`; `//a` matches any element. Results
  /// are deduplicated and in document order.
  std::vector<NodeId> Evaluate(const PathExpr& path) const;

  /// Evaluates a relative path from a context node (used for predicates
  /// and for the q1/q2 legs of association constraints).
  std::vector<NodeId> EvaluateFrom(NodeId context, const PathExpr& path) const;

  /// True if the predicate holds at `context`.
  bool PredicateHolds(NodeId context, const Predicate& pred) const;

 private:
  std::vector<NodeId> ApplyStep(const std::vector<NodeId>& context,
                                const Step& step, bool context_is_virtual_root
                                ) const;
  bool NodeTestMatches(NodeId id, const Step& step) const;

  const Document& doc_;
};

}  // namespace xcrypt

#endif  // XCRYPT_XPATH_EVALUATOR_H_
