#include "xpath/parser.h"

#include <cctype>

namespace xcrypt {

namespace {

class XPathReader {
 public:
  explicit XPathReader(const std::string& text) : text_(text) {}

  Result<PathExpr> ParseTopLevel() {
    auto path = ParsePath(/*allow_relative_start=*/false);
    if (!path.ok()) return path;
    if (pos_ != text_.size()) return Fail("trailing characters");
    return path;
  }

  Result<PathExpr> ParseRelative() {
    if (StartsWith(".")) ++pos_;
    auto path = ParsePath(/*allow_relative_start=*/true);
    if (!path.ok()) return path;
    if (pos_ != text_.size()) return Fail("trailing characters");
    return path;
  }

 private:
  Status Fail(const std::string& msg) const {
    return Status::ParseError("XPath: " + msg + " at offset " +
                              std::to_string(pos_) + " in '" + text_ + "'");
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool StartsWith(const char* s) const {
    return text_.compare(pos_, std::char_traits<char>::length(s), s) == 0;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == '#';
  }

  Result<PathExpr> ParsePath(bool allow_relative_start) {
    PathExpr path;
    bool first = true;
    while (!AtEnd() && (Peek() == '/' || Peek() == '@' ||
                        (first && allow_relative_start &&
                         (IsNameChar(Peek()) || Peek() == '*')))) {
      Axis axis = Axis::kChild;
      if (Peek() == '/') {
        ++pos_;
        if (!AtEnd() && Peek() == '/') {
          axis = Axis::kDescendant;
          ++pos_;
        }
      } else if (!first) {
        break;
      }
      auto step = ParseStep(axis);
      if (!step.ok()) return step.status();
      path.steps.push_back(std::move(*step));
      first = false;
    }
    if (path.steps.empty()) return Fail("expected a location step");
    return path;
  }

  Result<Step> ParseStep(Axis axis) {
    Step step;
    step.axis = axis;
    if (!AtEnd() && Peek() == '@') {
      step.is_attribute = true;
      ++pos_;
    }
    if (AtEnd()) return Status::ParseError("XPath: expected node test");
    if (Peek() == '*') {
      step.tag = "*";
      ++pos_;
    } else {
      size_t start = pos_;
      while (!AtEnd() && IsNameChar(Peek())) ++pos_;
      if (pos_ == start) return Fail("expected tag name");
      step.tag = text_.substr(start, pos_ - start);
    }
    while (!AtEnd() && Peek() == '[') {
      auto pred = ParsePredicate();
      if (!pred.ok()) return pred.status();
      step.predicates.push_back(std::move(*pred));
    }
    return step;
  }

  Result<Predicate> ParsePredicate() {
    ++pos_;  // '['
    Predicate pred;
    SkipSpace();
    if (!AtEnd() && Peek() == '.') ++pos_;  // ".//" context marker
    auto path = ParsePath(/*allow_relative_start=*/true);
    if (!path.ok()) return path.status();
    pred.path = std::move(*path);
    SkipSpace();
    if (!AtEnd() && Peek() != ']') {
      auto op = ParseOp();
      if (!op.ok()) return op.status();
      pred.op = *op;
      SkipSpace();
      auto lit = ParseLiteral();
      if (!lit.ok()) return lit.status();
      pred.literal = std::move(*lit);
      SkipSpace();
    }
    if (AtEnd() || Peek() != ']') return Fail("expected ']'");
    ++pos_;
    return pred;
  }

  Result<CompOp> ParseOp() {
    if (StartsWith("!=")) {
      pos_ += 2;
      return CompOp::kNe;
    }
    if (StartsWith("<=")) {
      pos_ += 2;
      return CompOp::kLe;
    }
    if (StartsWith(">=")) {
      pos_ += 2;
      return CompOp::kGe;
    }
    if (StartsWith("=")) {
      ++pos_;
      return CompOp::kEq;
    }
    if (StartsWith("<")) {
      ++pos_;
      return CompOp::kLt;
    }
    if (StartsWith(">")) {
      ++pos_;
      return CompOp::kGt;
    }
    return Fail("expected comparison operator");
  }

  Result<std::string> ParseLiteral() {
    if (AtEnd()) return Fail("expected literal");
    if (Peek() == '\'' || Peek() == '"') {
      const char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Fail("unterminated string literal");
      std::string out = text_.substr(start, pos_ - start);
      ++pos_;
      return out;
    }
    // Bare word / number literal (the paper writes [pname=Betty]).
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Fail("expected literal");
    return text_.substr(start, pos_ - start);
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathExpr> ParseXPath(const std::string& text) {
  return XPathReader(text).ParseTopLevel();
}

Result<PathExpr> ParseRelativePath(const std::string& text) {
  return XPathReader(text).ParseRelative();
}

}  // namespace xcrypt
