#ifndef XCRYPT_XPATH_AST_H_
#define XCRYPT_XPATH_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace xcrypt {

/// Navigation axis of a location step.
enum class Axis {
  kChild,       ///< `/tag`
  kDescendant,  ///< `//tag` (descendant-or-self for the match target)
};

/// Comparison operator in a value predicate.
enum class CompOp { kEq, kNe, kLt, kGt, kLe, kGe };

const char* CompOpSymbol(CompOp op);

struct Predicate;

/// One location step: axis, node test (tag or `*`, optionally an attribute
/// test `@name`), and zero or more predicates.
struct Step {
  Axis axis = Axis::kChild;
  bool is_attribute = false;
  std::string tag;  ///< "*" matches any tag
  std::vector<Predicate> predicates;
};

/// A location path: a sequence of steps. Whether the path is evaluated from
/// the document root or from a context node is decided by the caller
/// (top-level queries are absolute; predicate paths are relative).
struct PathExpr {
  std::vector<Step> steps;

  bool empty() const { return steps.empty(); }

  /// Serializes back to XPath syntax.
  std::string ToString() const;

  /// True if `prefix`'s steps match the beginning of this path (same axis,
  /// attribute flag, and tag, ignoring predicates). Used for the paper's
  /// "query captured by a security constraint" check (§3.2).
  bool HasPrefix(const PathExpr& prefix) const;
};

/// A step predicate `[path]` or `[path op literal]`.
///
/// `[pname='Betty']` parses as a relative path of one child step plus
/// op = kEq, literal = "Betty".
struct Predicate {
  PathExpr path;
  std::optional<CompOp> op;
  std::string literal;

  std::string ToString() const;
};

}  // namespace xcrypt

#endif  // XCRYPT_XPATH_AST_H_
