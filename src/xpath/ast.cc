#include "xpath/ast.h"

namespace xcrypt {

const char* CompOpSymbol(CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return "=";
    case CompOp::kNe:
      return "!=";
    case CompOp::kLt:
      return "<";
    case CompOp::kGt:
      return ">";
    case CompOp::kLe:
      return "<=";
    case CompOp::kGe:
      return ">=";
  }
  return "?";
}

std::string PathExpr::ToString() const {
  std::string out;
  for (const Step& step : steps) {
    out += (step.axis == Axis::kDescendant) ? "//" : "/";
    if (step.is_attribute) out += '@';
    out += step.tag;
    for (const Predicate& pred : step.predicates) out += pred.ToString();
  }
  return out;
}

bool PathExpr::HasPrefix(const PathExpr& prefix) const {
  if (prefix.steps.size() > steps.size()) return false;
  for (size_t i = 0; i < prefix.steps.size(); ++i) {
    const Step& a = steps[i];
    const Step& b = prefix.steps[i];
    if (a.axis != b.axis || a.is_attribute != b.is_attribute ||
        a.tag != b.tag) {
      return false;
    }
  }
  return true;
}

std::string Predicate::ToString() const {
  std::string out = "[";
  // Relative predicate paths render without the leading '/' for child-axis
  // first steps (XPath abbreviated syntax), e.g. [pname='Betty'].
  std::string body = path.ToString();
  if (!path.steps.empty() && path.steps.front().axis == Axis::kChild &&
      !body.empty() && body.front() == '/') {
    body.erase(body.begin());
  }
  out += body;
  if (op.has_value()) {
    out += CompOpSymbol(*op);
    out += '\'';
    out += literal;
    out += '\'';
  }
  out += ']';
  return out;
}

}  // namespace xcrypt
