#include "xpath/evaluator.h"

#include <algorithm>
#include <cstdlib>

namespace xcrypt {

bool CompareValues(const std::string& value, CompOp op,
                   const std::string& literal) {
  char* end_v = nullptr;
  char* end_l = nullptr;
  const double dv = std::strtod(value.c_str(), &end_v);
  const double dl = std::strtod(literal.c_str(), &end_l);
  const bool numeric = !value.empty() && !literal.empty() &&
                       end_v == value.c_str() + value.size() &&
                       end_l == literal.c_str() + literal.size();
  int cmp;
  if (numeric) {
    cmp = (dv < dl) ? -1 : (dv > dl) ? 1 : 0;
  } else {
    cmp = value.compare(literal);
    cmp = (cmp < 0) ? -1 : (cmp > 0) ? 1 : 0;
  }
  switch (op) {
    case CompOp::kEq:
      return cmp == 0;
    case CompOp::kNe:
      return cmp != 0;
    case CompOp::kLt:
      return cmp < 0;
    case CompOp::kGt:
      return cmp > 0;
    case CompOp::kLe:
      return cmp <= 0;
    case CompOp::kGe:
      return cmp >= 0;
  }
  return false;
}

std::vector<NodeId> XPathEvaluator::Evaluate(const PathExpr& path) const {
  if (doc_.empty() || path.empty()) return {};
  // Start from a virtual document node whose only child is the root, so
  // that `/root_tag` selects the root itself.
  std::vector<NodeId> context = {kNullNode};
  bool virtual_root = true;
  for (const Step& step : path.steps) {
    context = ApplyStep(context, step, virtual_root);
    virtual_root = false;
    if (context.empty()) return {};
  }
  std::sort(context.begin(), context.end());
  context.erase(std::unique(context.begin(), context.end()), context.end());
  return context;
}

std::vector<NodeId> XPathEvaluator::EvaluateFrom(NodeId context,
                                                 const PathExpr& path) const {
  std::vector<NodeId> nodes = {context};
  for (const Step& step : path.steps) {
    nodes = ApplyStep(nodes, step, /*context_is_virtual_root=*/false);
    if (nodes.empty()) return {};
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

bool XPathEvaluator::PredicateHolds(NodeId context,
                                    const Predicate& pred) const {
  const std::vector<NodeId> bound = EvaluateFrom(context, pred.path);
  if (!pred.op.has_value()) return !bound.empty();
  for (NodeId id : bound) {
    if (CompareValues(doc_.node(id).value, *pred.op, pred.literal)) {
      return true;
    }
  }
  return false;
}

std::vector<NodeId> XPathEvaluator::ApplyStep(
    const std::vector<NodeId>& context, const Step& step,
    bool context_is_virtual_root) const {
  std::vector<NodeId> out;
  auto consider = [&](NodeId candidate) {
    if (!NodeTestMatches(candidate, step)) return;
    for (const Predicate& pred : step.predicates) {
      if (!PredicateHolds(candidate, pred)) return;
    }
    out.push_back(candidate);
  };

  for (NodeId ctx : context) {
    if (context_is_virtual_root) {
      if (step.axis == Axis::kChild) {
        // Children of the virtual document node: just the root element.
        consider(doc_.root());
      } else {
        // Descendants of the virtual document node: every node.
        doc_.Visit(doc_.root(), consider);
      }
      continue;
    }
    if (step.axis == Axis::kChild) {
      for (NodeId c : doc_.node(ctx).children) consider(c);
    } else {
      // Proper descendants.
      for (NodeId c : doc_.node(ctx).children) doc_.Visit(c, consider);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool XPathEvaluator::NodeTestMatches(NodeId id, const Step& step) const {
  const Node& n = doc_.node(id);
  if (step.is_attribute != n.is_attribute) return false;
  return step.tag == "*" || step.tag == n.tag;
}

}  // namespace xcrypt
