#ifndef XCRYPT_XPATH_PARSER_H_
#define XCRYPT_XPATH_PARSER_H_

#include <string>

#include "common/status.h"
#include "xpath/ast.h"

namespace xcrypt {

/// Parses the XPath subset used throughout the paper:
///
///   path      := ('/' | '//') step (('/' | '//') step)*
///   step      := '@'? (NAME | '*') predicate*
///   predicate := '[' relpath (op literal)? ']'
///   relpath   := '.'? path | step (('/' | '//') step)*
///   op        := '=' | '!=' | '<' | '>' | '<=' | '>='
///   literal   := 'quoted' | "quoted" | bare-word-or-number
///
/// Examples from the paper: `//insurance`,
/// `//patient[pname='Betty'][.//disease='diarrhea']`,
/// `//patient[.//insurance/@coverage>='10000']//SSN`.
Result<PathExpr> ParseXPath(const std::string& text);

/// Parses a relative path as used inside security constraints, e.g.
/// `/pname` or `//disease` (leading '/' meaning child-of-context).
Result<PathExpr> ParseRelativePath(const std::string& text);

}  // namespace xcrypt

#endif  // XCRYPT_XPATH_PARSER_H_
