#ifndef XCRYPT_STORAGE_UPDATE_DELTA_H_
#define XCRYPT_STORAGE_UPDATE_DELTA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/update_effects.h"
#include "index/btree.h"
#include "index/dsi.h"
#include "storage/serializer.h"

namespace xcrypt {

/// One re-encrypted block shipped by a delta: the full new ciphertext
/// under its bumped generation (wire v3 cache coherence keys on exactly
/// this pair).
struct DeltaBlockPut {
  int32_t id = 0;
  uint32_t generation = 0;
  Bytes ciphertext;
};

/// An incremental update to a hosted bundle: everything the owner's edit
/// batch changed, and nothing else. Applying a delta advances the bundle
/// from `base_generation` to `new_generation`; the apply is atomic (a
/// failed validation leaves the bundle untouched) and idempotent (a
/// replay against an already-advanced bundle is an Ok no-op).
///
/// Like bundle images, the wire form is length-prefixed, little-endian,
/// and `CanHold`-guarded so corrupt counts can never balloon memory.
struct DeltaBundle {
  /// Target database; checked against the bundle's self-declared name
  /// when both sides carry one.
  std::string name;
  uint64_t base_generation = 0;
  uint64_t new_generation = 0;

  /// Ordered skeleton edits, replayed verbatim (see SkeletonOp).
  std::vector<SkeletonOp> ops;

  std::vector<DeltaBlockPut> block_puts;
  /// (block id, final generation) of blocks whose subtree was deleted.
  std::vector<std::pair<int32_t, uint32_t>> block_tombstones;
  /// (block id, skeleton marker node) for blocks whose marker moved or
  /// was created, in post-op skeleton ids.
  std::vector<std::pair<int32_t, NodeId>> markers;

  std::vector<std::pair<int32_t, Interval>> rep_sets;
  std::vector<int32_t> rep_removes;

  std::vector<std::pair<std::string, Interval>> dsi_removed;
  std::vector<std::pair<std::string, Interval>> dsi_added;

  /// Full replacement entry lists per rebuilt value-index token (OPESS
  /// epoch rebuilds rescale the whole tag, so partial patches are
  /// impossible by design).
  std::vector<std::pair<std::string, std::vector<BTreeEntry>>>
      value_index_puts;
  std::vector<std::string> value_index_removes;

  std::vector<Interval> public_removed;
  std::vector<std::pair<Interval, NodeId>> public_added;
};

/// Encodes a delta into its self-contained binary image.
Bytes SerializeDelta(const DeltaBundle& delta);

/// Parses an image produced by SerializeDelta. Corruption on truncated,
/// trailing, or malformed input; Unsupported on a version mismatch.
Result<DeltaBundle> DeserializeDelta(const Bytes& image);

/// Applies `delta` to `bundle` atomically: every structural precondition
/// is validated (against scratch copies where ops must run to be
/// checked) before the first byte of the bundle changes, so a failed
/// apply leaves the bundle exactly as it was. Replaying a delta the
/// bundle already absorbed (`generation == new_generation`) is an Ok
/// no-op; any other generation mismatch is InvalidArgument.
Status ApplyDelta(HostedBundle* bundle, const DeltaBundle& delta);

}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_UPDATE_DELTA_H_
