#include "storage/update/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <utility>

#include "common/binary_io.h"

namespace xcrypt {
namespace {

constexpr uint32_t kWalRecordMagic = 0x58575231;  // "XWR1"
constexpr size_t kWalRecordHeaderBytes = 4 + 4 + 8;

/// FNV-1a 64-bit over the record payload. Not cryptographic — the log
/// never leaves the owner's trust domain; the checksum only has to catch
/// torn writes and bit rot.
uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for " + path);
}

}  // namespace

std::string WalPathFor(const std::string& bundle_path) {
  return bundle_path + ".wal";
}

BundleStore::~BundleStore() { CloseWal(); }

BundleStore::BundleStore(BundleStore&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      bundle_(std::move(other.bundle_)),
      wal_fd_(other.wal_fd_),
      wal_bytes_(other.wal_bytes_),
      replayed_(other.replayed_) {
  other.wal_fd_ = -1;
}

BundleStore& BundleStore::operator=(BundleStore&& other) noexcept {
  if (this != &other) {
    CloseWal();
    path_ = std::move(other.path_);
    options_ = other.options_;
    bundle_ = std::move(other.bundle_);
    wal_fd_ = other.wal_fd_;
    wal_bytes_ = other.wal_bytes_;
    replayed_ = other.replayed_;
    other.wal_fd_ = -1;
  }
  return *this;
}

void BundleStore::CloseWal() {
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
}

Status BundleStore::OpenWalForAppend() {
  CloseWal();
  const std::string wal_path = WalPathFor(path_);
  wal_fd_ = ::open(wal_path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (wal_fd_ < 0) return IoError("open", wal_path);
  std::error_code ec;
  const auto size = std::filesystem::file_size(wal_path, ec);
  wal_bytes_ = ec ? 0 : static_cast<int64_t>(size);
  return Status::Ok();
}

Result<BundleStore> BundleStore::Create(const std::string& path,
                                        HostedBundle bundle,
                                        const Options& options) {
  BundleStore store;
  store.path_ = path;
  store.options_ = options;
  store.bundle_ = std::move(bundle);
  XCRYPT_RETURN_NOT_OK(SaveBundle(store.bundle_.database,
                                  store.bundle_.metadata, path,
                                  store.bundle_.name,
                                  store.bundle_.generation));
  // A fresh store starts with an empty log (truncating any stale one).
  std::error_code ec;
  std::filesystem::remove(WalPathFor(path), ec);
  XCRYPT_RETURN_NOT_OK(store.OpenWalForAppend());
  return store;
}

Result<BundleStore> BundleStore::Open(const std::string& path,
                                      const Options& options) {
  BundleStore store;
  store.path_ = path;
  store.options_ = options;
  auto bundle = LoadBundle(path);
  if (!bundle.ok()) return bundle.status();
  store.bundle_ = std::move(*bundle);
  XCRYPT_RETURN_NOT_OK(store.ReplayWal());
  XCRYPT_RETURN_NOT_OK(store.OpenWalForAppend());
  return store;
}

Status BundleStore::ReplayWal() {
  const std::string wal_path = WalPathFor(path_);
  std::ifstream in(wal_path, std::ios::binary | std::ios::ate);
  if (!in) return Status::Ok();  // no log: nothing to replay
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), size)) {
    return IoError("read", wal_path);
  }

  size_t off = 0;
  while (data.size() - off >= kWalRecordHeaderBytes) {
    Bytes header(data.begin() + off,
                 data.begin() + off + kWalRecordHeaderBytes);
    BinaryReader r(header);
    const uint32_t magic = r.U32();
    const uint32_t length = r.U32();
    const uint64_t checksum = r.U64();
    if (magic != kWalRecordMagic) break;  // torn/garbage tail
    if (data.size() - off - kWalRecordHeaderBytes < length) break;  // torn
    const uint8_t* payload = data.data() + off + kWalRecordHeaderBytes;
    if (Fnv1a(payload, length) != checksum) break;  // torn mid-payload

    // A checksummed record that fails to decode or apply is not a torn
    // write — it is real corruption, and silently dropping it would lose
    // an acknowledged update.
    auto delta = DeserializeDelta(Bytes(payload, payload + length));
    if (!delta.ok()) {
      return Status::Corruption("WAL record undecodable: " +
                                delta.status().ToString());
    }
    if (delta->new_generation > bundle_.generation) {
      // Older records (a checkpoint postdates them) are skipped; the
      // boundary case is covered by ApplyDelta's idempotency.
      XCRYPT_RETURN_NOT_OK(ApplyDelta(&bundle_, *delta));
      ++replayed_;
    }
    off += kWalRecordHeaderBytes + length;
  }
  if (off < data.size()) {
    // Drop the torn tail so the next append starts at a record boundary.
    std::error_code ec;
    std::filesystem::resize_file(wal_path, off, ec);
    if (ec) return IoError("truncate", wal_path);
  }
  return Status::Ok();
}

Status BundleStore::AppendRecord(const Bytes& payload) {
  Bytes record;
  BinaryWriter w(&record);
  w.U32(kWalRecordMagic);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U64(Fnv1a(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n = ::write(wal_fd_, record.data() + written,
                              record.size() - written);
    if (n < 0) return IoError("write", WalPathFor(path_));
    written += static_cast<size_t>(n);
  }
  if (options_.fsync && ::fsync(wal_fd_) != 0) {
    return IoError("fsync", WalPathFor(path_));
  }
  wal_bytes_ += static_cast<int64_t>(record.size());
  return Status::Ok();
}

Status BundleStore::Apply(const DeltaBundle& delta) {
  if (wal_fd_ < 0) return Status::Internal("bundle store is not open");
  const uint64_t before = bundle_.generation;
  // In-memory first: ApplyDelta validates everything before mutating, so
  // a rejected delta leaves both the bundle and the log untouched.
  XCRYPT_RETURN_NOT_OK(ApplyDelta(&bundle_, delta));
  if (bundle_.generation == before) return Status::Ok();  // replay no-op
  XCRYPT_RETURN_NOT_OK(AppendRecord(SerializeDelta(delta)));
  if (wal_bytes_ >= options_.checkpoint_wal_bytes) return Checkpoint();
  return Status::Ok();
}

Status BundleStore::Checkpoint() {
  // SaveBundle commits via temp-then-rename; the log swap below does the
  // same, so every crash point resolves to image+log states Open knows
  // how to reconcile.
  XCRYPT_RETURN_NOT_OK(SaveBundle(bundle_.database, bundle_.metadata, path_,
                                  bundle_.name, bundle_.generation));
  const std::string wal_path = WalPathFor(path_);
  const std::string tmp_path = wal_path + ".tmp";
  {
    std::ofstream tmp(tmp_path, std::ios::binary | std::ios::trunc);
    if (!tmp) return IoError("create", tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, wal_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return IoError("rename", wal_path);
  }
  return OpenWalForAppend();
}

}  // namespace xcrypt
