#ifndef XCRYPT_STORAGE_UPDATE_DELTA_BUILDER_H_
#define XCRYPT_STORAGE_UPDATE_DELTA_BUILDER_H_

#include <string>

#include "core/client.h"
#include "storage/update/delta.h"

namespace xcrypt {

/// Owner-side delta producer: wraps a Client, records the side effects of
/// every update routed through it, and materializes them as a DeltaBundle
/// that advances a hosted bundle by exactly one generation. Only touched
/// blocks are re-encrypted (the Client's incremental paths guarantee
/// that), so the bundle's size tracks the edit, not the database.
///
/// Usage: construct, run one batch of updates, call Build once, destroy.
/// The recorder detaches from the client on destruction.
class DeltaBuilder {
 public:
  explicit DeltaBuilder(Client* client) : client_(client) {
    client_->BeginRecording(&effects_);
  }
  ~DeltaBuilder() { client_->EndRecording(); }

  DeltaBuilder(const DeltaBuilder&) = delete;
  DeltaBuilder& operator=(const DeltaBuilder&) = delete;

  Result<int> UpdateValues(const PathExpr& path, const std::string& value) {
    return client_->UpdateValues(path, value);
  }
  Status InsertSubtree(const PathExpr& parent_path,
                       const Document& fragment) {
    return client_->InsertSubtree(parent_path, fragment);
  }
  Result<int> DeleteSubtrees(const PathExpr& path) {
    return client_->DeleteSubtrees(path);
  }

  /// True when no recorded edit had any effect (nothing to ship).
  bool empty() const { return effects_.empty(); }

  const UpdateEffects& effects() const { return effects_; }

  /// Materializes the recorded effects as a delta advancing `name` from
  /// `base_generation` to `base_generation + 1`. Block ciphertexts and
  /// value-index entries are read from the client's current state, so
  /// call this after the batch, before any further edits.
  DeltaBundle Build(const std::string& name, uint64_t base_generation) const;

 private:
  Client* client_;
  UpdateEffects effects_;
};

}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_UPDATE_DELTA_BUILDER_H_
