#ifndef XCRYPT_STORAGE_UPDATE_WAL_H_
#define XCRYPT_STORAGE_UPDATE_WAL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/update/delta.h"

namespace xcrypt {

/// Path of the write-ahead log that shadows a bundle file.
std::string WalPathFor(const std::string& bundle_path);

struct BundleStoreOptions {
  BundleStoreOptions() {}
  /// Checkpoint automatically once the log outgrows this many bytes.
  int64_t checkpoint_wal_bytes = 8 * 1024 * 1024;
  /// fsync after every append (tests turn this off for speed).
  bool fsync = true;
};

/// Durable owner-side bundle: a bundle image on disk plus a write-ahead
/// log of delta records. Every Apply first validates the delta against
/// the in-memory bundle (ApplyDelta is atomic — a bad delta changes
/// nothing), then appends a checksummed record to the log. Checkpoints
/// rewrite the bundle image with SaveBundle's temp-then-rename commit and
/// swap in an empty log the same way, so no crash point leaves a torn or
/// ambiguous state:
///
///   - crash mid-append: the torn tail fails its length/checksum test and
///     is truncated on the next Open;
///   - crash between the image rename and the log swap: the stale log's
///     records carry generations the image already absorbed and are
///     skipped on replay (ApplyDelta's idempotency covers the boundary
///     record).
class BundleStore {
 public:
  using Options = BundleStoreOptions;

  /// Creates a fresh store: writes the bundle image and an empty log.
  static Result<BundleStore> Create(const std::string& path,
                                    HostedBundle bundle,
                                    const Options& options = Options());

  /// Opens an existing store: loads the image, replays the log (skipping
  /// already-absorbed records, truncating a torn tail), and reopens the
  /// log for appending.
  static Result<BundleStore> Open(const std::string& path,
                                  const Options& options = Options());

  ~BundleStore();
  BundleStore(BundleStore&& other) noexcept;
  BundleStore& operator=(BundleStore&& other) noexcept;
  BundleStore(const BundleStore&) = delete;
  BundleStore& operator=(const BundleStore&) = delete;

  /// Applies one delta: in-memory first (atomic, validating), then the
  /// durable append. Auto-checkpoints past the configured log size.
  Status Apply(const DeltaBundle& delta);

  /// Rewrites the bundle image at the current generation and swaps in an
  /// empty log, both with temp-then-rename commits.
  Status Checkpoint();

  const HostedBundle& bundle() const { return bundle_; }
  uint64_t generation() const { return bundle_.generation; }
  const std::string& path() const { return path_; }
  int64_t wal_bytes() const { return wal_bytes_; }
  /// Number of log records replayed by Open (0 after Create).
  int replayed() const { return replayed_; }

 private:
  BundleStore() = default;

  Status OpenWalForAppend();
  Status AppendRecord(const Bytes& payload);
  Status ReplayWal();
  void CloseWal();

  std::string path_;
  Options options_;
  HostedBundle bundle_;
  int wal_fd_ = -1;
  int64_t wal_bytes_ = 0;
  int replayed_ = 0;
};

}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_UPDATE_WAL_H_
