#include "storage/update/delta.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/binary_io.h"
#include "core/encryptor.h"

namespace xcrypt {
namespace {

constexpr uint32_t kDeltaMagic = 0x58434431;  // "XCD1"
constexpr uint32_t kDeltaVersion = 1;

// Minimum encoded sizes, used with BinaryReader::CanHold so a corrupted
// count can never cause an oversized allocation.
constexpr uint64_t kMinOpBytes = 14;        // u8 + i32 + 2 str + u8
constexpr uint64_t kMinBlockPutBytes = 12;  // i32 + u32 + blob
constexpr uint64_t kMinIntervalBytes = 16;  // 2 f64

void WriteInterval(BinaryWriter& w, const Interval& iv) {
  w.F64(iv.min);
  w.F64(iv.max);
}

Interval ReadInterval(BinaryReader& r) {
  Interval iv;
  iv.min = r.F64();
  iv.max = r.F64();
  return iv;
}

Status CheckFullyConsumed(const BinaryReader& r, const char* what) {
  if (r.failed()) {
    return Status::Corruption(std::string("truncated ") + what);
  }
  if (!r.AtEnd()) {
    return Status::Corruption(std::string("trailing bytes in ") + what);
  }
  return Status::Ok();
}

}  // namespace

Bytes SerializeDelta(const DeltaBundle& delta) {
  Bytes out;
  BinaryWriter w(&out);
  w.U32(kDeltaMagic);
  w.U32(kDeltaVersion);
  w.Str(delta.name);
  w.U64(delta.base_generation);
  w.U64(delta.new_generation);

  w.U32(static_cast<uint32_t>(delta.ops.size()));
  for (const SkeletonOp& op : delta.ops) {
    w.U8(static_cast<uint8_t>(op.kind));
    w.I32(op.node);
    w.Str(op.tag);
    w.Str(op.value);
    w.U8(op.is_attribute ? 1 : 0);
  }

  w.U32(static_cast<uint32_t>(delta.block_puts.size()));
  for (const DeltaBlockPut& put : delta.block_puts) {
    w.I32(put.id);
    w.U32(put.generation);
    w.Blob(put.ciphertext);
  }
  w.U32(static_cast<uint32_t>(delta.block_tombstones.size()));
  for (const auto& [id, generation] : delta.block_tombstones) {
    w.I32(id);
    w.U32(generation);
  }
  w.U32(static_cast<uint32_t>(delta.markers.size()));
  for (const auto& [id, node] : delta.markers) {
    w.I32(id);
    w.I32(node);
  }

  w.U32(static_cast<uint32_t>(delta.rep_sets.size()));
  for (const auto& [id, rep] : delta.rep_sets) {
    w.I32(id);
    WriteInterval(w, rep);
  }
  w.U32(static_cast<uint32_t>(delta.rep_removes.size()));
  for (const int32_t id : delta.rep_removes) w.I32(id);

  for (const auto* list : {&delta.dsi_removed, &delta.dsi_added}) {
    w.U32(static_cast<uint32_t>(list->size()));
    for (const auto& [token, iv] : *list) {
      w.Str(token);
      WriteInterval(w, iv);
    }
  }

  w.U32(static_cast<uint32_t>(delta.value_index_puts.size()));
  for (const auto& [token, entries] : delta.value_index_puts) {
    w.Str(token);
    w.U32(static_cast<uint32_t>(entries.size()));
    for (const BTreeEntry& e : entries) {
      w.I64(e.key);
      w.I32(e.block_id);
    }
  }
  w.U32(static_cast<uint32_t>(delta.value_index_removes.size()));
  for (const std::string& token : delta.value_index_removes) w.Str(token);

  w.U32(static_cast<uint32_t>(delta.public_removed.size()));
  for (const Interval& iv : delta.public_removed) WriteInterval(w, iv);
  w.U32(static_cast<uint32_t>(delta.public_added.size()));
  for (const auto& [iv, node] : delta.public_added) {
    WriteInterval(w, iv);
    w.I32(node);
  }
  return out;
}

Result<DeltaBundle> DeserializeDelta(const Bytes& image) {
  BinaryReader r(image);
  if (r.U32() != kDeltaMagic) {
    return Status::Corruption("bad delta magic");
  }
  const uint32_t version = r.U32();
  if (version != kDeltaVersion) {
    return Status::Unsupported("delta format version " +
                               std::to_string(version) + " not supported");
  }
  DeltaBundle delta;
  delta.name = r.Str();
  delta.base_generation = r.U64();
  delta.new_generation = r.U64();

  const uint32_t num_ops = r.U32();
  if (!r.CanHold(num_ops, kMinOpBytes)) {
    return Status::Corruption("delta op count exceeds image size");
  }
  delta.ops.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    SkeletonOp op;
    const uint8_t kind = r.U8();
    if (kind < SkeletonOp::kAdd || kind > SkeletonOp::kCompact) {
      return Status::Corruption("bad skeleton op kind " +
                                std::to_string(kind));
    }
    op.kind = static_cast<SkeletonOp::Kind>(kind);
    op.node = r.I32();
    op.tag = r.Str();
    op.value = r.Str();
    op.is_attribute = r.U8() != 0;
    delta.ops.push_back(std::move(op));
  }

  const uint32_t num_puts = r.U32();
  if (!r.CanHold(num_puts, kMinBlockPutBytes)) {
    return Status::Corruption("delta block count exceeds image size");
  }
  delta.block_puts.reserve(num_puts);
  for (uint32_t i = 0; i < num_puts; ++i) {
    DeltaBlockPut put;
    put.id = r.I32();
    put.generation = r.U32();
    put.ciphertext = r.Blob();
    delta.block_puts.push_back(std::move(put));
  }
  const uint32_t num_tombstones = r.U32();
  if (!r.CanHold(num_tombstones, 8)) {
    return Status::Corruption("delta tombstone count exceeds image size");
  }
  for (uint32_t i = 0; i < num_tombstones; ++i) {
    const int32_t id = r.I32();
    const uint32_t generation = r.U32();
    delta.block_tombstones.emplace_back(id, generation);
  }
  const uint32_t num_markers = r.U32();
  if (!r.CanHold(num_markers, 8)) {
    return Status::Corruption("delta marker count exceeds image size");
  }
  for (uint32_t i = 0; i < num_markers; ++i) {
    const int32_t id = r.I32();
    const NodeId node = r.I32();
    delta.markers.emplace_back(id, node);
  }

  const uint32_t num_rep_sets = r.U32();
  if (!r.CanHold(num_rep_sets, 4 + kMinIntervalBytes)) {
    return Status::Corruption("delta rep count exceeds image size");
  }
  for (uint32_t i = 0; i < num_rep_sets; ++i) {
    const int32_t id = r.I32();
    delta.rep_sets.emplace_back(id, ReadInterval(r));
  }
  const uint32_t num_rep_removes = r.U32();
  if (!r.CanHold(num_rep_removes, 4)) {
    return Status::Corruption("delta rep-remove count exceeds image size");
  }
  for (uint32_t i = 0; i < num_rep_removes; ++i) {
    delta.rep_removes.push_back(r.I32());
  }

  for (auto* list : {&delta.dsi_removed, &delta.dsi_added}) {
    const uint32_t num = r.U32();
    if (!r.CanHold(num, 4 + kMinIntervalBytes)) {
      return Status::Corruption("delta DSI entry count exceeds image size");
    }
    list->reserve(num);
    for (uint32_t i = 0; i < num; ++i) {
      std::string token = r.Str();
      list->emplace_back(std::move(token), ReadInterval(r));
    }
  }

  const uint32_t num_indexes = r.U32();
  if (!r.CanHold(num_indexes, 8)) {
    return Status::Corruption("delta value-index count exceeds image size");
  }
  for (uint32_t i = 0; i < num_indexes; ++i) {
    std::string token = r.Str();
    const uint32_t num_entries = r.U32();
    if (!r.CanHold(num_entries, 12)) {
      return Status::Corruption(
          "delta value-index entry count exceeds image size");
    }
    std::vector<BTreeEntry> entries;
    entries.reserve(num_entries);
    for (uint32_t j = 0; j < num_entries; ++j) {
      BTreeEntry e;
      e.key = r.I64();
      e.block_id = r.I32();
      entries.push_back(e);
    }
    delta.value_index_puts.emplace_back(std::move(token), std::move(entries));
  }
  const uint32_t num_index_removes = r.U32();
  if (!r.CanHold(num_index_removes, 4)) {
    return Status::Corruption(
        "delta value-index remove count exceeds image size");
  }
  for (uint32_t i = 0; i < num_index_removes; ++i) {
    delta.value_index_removes.push_back(r.Str());
  }

  const uint32_t num_public_removed = r.U32();
  if (!r.CanHold(num_public_removed, kMinIntervalBytes)) {
    return Status::Corruption("delta public-remove count exceeds image size");
  }
  for (uint32_t i = 0; i < num_public_removed; ++i) {
    delta.public_removed.push_back(ReadInterval(r));
  }
  const uint32_t num_public_added = r.U32();
  if (!r.CanHold(num_public_added, kMinIntervalBytes + 4)) {
    return Status::Corruption("delta public-add count exceeds image size");
  }
  for (uint32_t i = 0; i < num_public_added; ++i) {
    const Interval iv = ReadInterval(r);
    delta.public_added.emplace_back(iv, r.I32());
  }

  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "delta image"));
  return delta;
}

Status ApplyDelta(HostedBundle* bundle, const DeltaBundle& delta) {
  if (!delta.name.empty() && !bundle->name.empty() &&
      delta.name != bundle->name) {
    return Status::InvalidArgument("delta targets database \"" + delta.name +
                                   "\" but bundle is \"" + bundle->name +
                                   "\"");
  }
  if (bundle->generation == delta.new_generation) {
    return Status::Ok();  // already absorbed (idempotent replay)
  }
  if (bundle->generation != delta.base_generation) {
    return Status::InvalidArgument(
        "delta expects base generation " +
        std::to_string(delta.base_generation) + " but bundle is at " +
        std::to_string(bundle->generation));
  }

  // --- Validation stage. Skeleton ops must actually run to be checked,
  // so they run on scratch copies (the skeleton is the cheap public part
  // of the bundle; ciphertext blocks are never copied). Nothing in the
  // bundle is touched until every check below has passed.
  Document skeleton = bundle->database.skeleton;
  std::vector<NodeId> markers = bundle->database.marker_of_block;
  std::map<Interval, NodeId> public_map =
      bundle->metadata.public_interval_to_node;

  for (const SkeletonOp& op : delta.ops) {
    switch (op.kind) {
      case SkeletonOp::kAdd:
        if (op.node < 0 || op.node >= skeleton.node_count()) {
          return Status::Corruption("skeleton add parent out of range");
        }
        if (op.is_attribute) {
          skeleton.AddAttribute(op.node, op.tag, op.value);
        } else {
          const NodeId id = skeleton.AddChild(op.node, op.tag);
          skeleton.node(id).value = op.value;
        }
        break;
      case SkeletonOp::kSetValue:
        if (op.node < 0 || op.node >= skeleton.node_count()) {
          return Status::Corruption("skeleton set-value target out of range");
        }
        skeleton.node(op.node).value = op.value;
        break;
      case SkeletonOp::kDetach: {
        if (op.node < 0 || op.node >= skeleton.node_count()) {
          return Status::Corruption("skeleton detach target out of range");
        }
        const Status detached = skeleton.Detach(op.node);
        if (!detached.ok()) {
          return Status::Corruption("skeleton detach failed: " +
                                    detached.ToString());
        }
        break;
      }
      case SkeletonOp::kCompact:
        (void)CompactSkeleton(&skeleton, &markers, &public_map);
        break;
    }
  }

  // Block puts may extend the block array, but only contiguously — a
  // gap would leave an uninitialized block the queries could reach.
  size_t new_block_count = bundle->database.blocks.size();
  {
    std::vector<int32_t> ids;
    ids.reserve(delta.block_puts.size());
    for (const DeltaBlockPut& put : delta.block_puts) ids.push_back(put.id);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
      return Status::Corruption("duplicate block id in delta puts");
    }
    for (const int32_t id : ids) {
      if (id < 0 || static_cast<size_t>(id) > new_block_count) {
        return Status::Corruption("block put id " + std::to_string(id) +
                                  " out of range");
      }
      if (static_cast<size_t>(id) == new_block_count) ++new_block_count;
    }
  }
  for (const auto& [id, generation] : delta.block_tombstones) {
    (void)generation;
    if (id < 0 || static_cast<size_t>(id) >= new_block_count) {
      return Status::Corruption("tombstoned block id out of range");
    }
  }
  for (const auto& [id, node] : delta.markers) {
    if (id < 0 || static_cast<size_t>(id) >= new_block_count) {
      return Status::Corruption("marker block id out of range");
    }
    if (node < kNullNode || node >= skeleton.node_count()) {
      return Status::Corruption("marker node out of range");
    }
  }
  for (const auto& [id, rep] : delta.rep_sets) {
    (void)rep;
    if (id < 0 || static_cast<size_t>(id) >= new_block_count) {
      return Status::Corruption("block-table id out of range");
    }
  }
  for (const auto& [iv, node] : delta.public_added) {
    (void)iv;
    if (node < 0 || node >= skeleton.node_count()) {
      return Status::Corruption("public-map node out of range");
    }
  }
  // Every DSI removal must name a live entry — a miss means the delta
  // was built against a different bundle state than it claims.
  for (const auto& [token, iv] : delta.dsi_removed) {
    const std::vector<Interval>& list =
        bundle->metadata.dsi_table.Lookup(token);
    if (!std::binary_search(list.begin(), list.end(), iv)) {
      return Status::Corruption("delta removes unknown DSI entry for token");
    }
  }

  // --- Commit stage: nothing below can fail.
  bundle->database.skeleton = std::move(skeleton);
  bundle->database.blocks.resize(new_block_count);
  for (const DeltaBlockPut& put : delta.block_puts) {
    EncryptedBlock& block = bundle->database.blocks[put.id];
    block.id = put.id;
    block.generation = put.generation;
    block.ciphertext = put.ciphertext;
    block.plaintext_bytes = 0;  // owner-side knowledge; not shipped
  }
  markers.resize(new_block_count, kNullNode);
  for (const auto& [id, generation] : delta.block_tombstones) {
    EncryptedBlock& block = bundle->database.blocks[id];
    block.ciphertext.clear();
    block.generation = generation;
    block.plaintext_bytes = 0;
    markers[id] = kNullNode;
  }
  for (const auto& [id, node] : delta.markers) markers[id] = node;
  bundle->database.marker_of_block = std::move(markers);

  for (const auto& [token, iv] : delta.dsi_removed) {
    bundle->metadata.dsi_table.Remove(token, iv);
  }
  for (const auto& [token, iv] : delta.dsi_added) {
    bundle->metadata.dsi_table.Add(token, iv);
  }
  for (const int32_t id : delta.rep_removes) {
    bundle->metadata.block_table.Remove(id);  // lenient: may already be gone
  }
  for (const auto& [id, rep] : delta.rep_sets) {
    bundle->metadata.block_table.Set(id, rep);
  }
  for (const std::string& token : delta.value_index_removes) {
    bundle->metadata.value_indexes.erase(token);
  }
  for (const auto& [token, entries] : delta.value_index_puts) {
    BPlusTree tree;
    tree.BulkLoad(entries);
    bundle->metadata.value_indexes.insert_or_assign(token, std::move(tree));
  }
  for (const Interval& iv : delta.public_removed) {
    public_map.erase(iv);  // lenient: compaction may have dropped it
  }
  for (const auto& [iv, node] : delta.public_added) {
    public_map[iv] = node;
  }
  bundle->metadata.public_interval_to_node = std::move(public_map);

  bundle->generation = delta.new_generation;
  return Status::Ok();
}

}  // namespace xcrypt
