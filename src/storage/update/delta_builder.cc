#include "storage/update/delta_builder.h"

#include <limits>

namespace xcrypt {

DeltaBundle DeltaBuilder::Build(const std::string& name,
                                uint64_t base_generation) const {
  DeltaBundle delta;
  delta.name = name;
  delta.base_generation = base_generation;
  delta.new_generation = base_generation + 1;
  delta.ops = effects_.ops();

  const EncryptedDatabase& db = client_->database();
  for (const int block : effects_.touched_blocks()) {
    DeltaBlockPut put;
    put.id = block;
    put.generation = db.blocks[block].generation;
    put.ciphertext = db.blocks[block].ciphertext;
    delta.block_puts.push_back(std::move(put));
  }
  for (const int block : effects_.tombstoned_blocks()) {
    delta.block_tombstones.emplace_back(block, db.blocks[block].generation);
  }
  delta.markers.assign(effects_.markers().begin(), effects_.markers().end());
  delta.rep_sets.assign(effects_.reps_set().begin(),
                        effects_.reps_set().end());
  delta.rep_removes.assign(effects_.reps_removed().begin(),
                           effects_.reps_removed().end());
  delta.dsi_removed = effects_.dsi_removed();
  delta.dsi_added = effects_.dsi_added();

  // OPESS epoch rebuilds rescale a whole tag's index, so a rebuilt token
  // ships its full (already re-randomized) entry list.
  const Metadata& metadata = client_->metadata();
  for (const std::string& token : effects_.value_rebuilt()) {
    const auto it = metadata.value_indexes.find(token);
    if (it == metadata.value_indexes.end()) continue;
    delta.value_index_puts.emplace_back(
        token, it->second.RangeScan(std::numeric_limits<int64_t>::min(),
                                    std::numeric_limits<int64_t>::max()));
  }
  delta.value_index_removes.assign(effects_.value_removed().begin(),
                                   effects_.value_removed().end());
  delta.public_removed.assign(effects_.public_removed().begin(),
                              effects_.public_removed().end());
  delta.public_added.assign(effects_.public_added().begin(),
                            effects_.public_added().end());
  return delta;
}

}  // namespace xcrypt
