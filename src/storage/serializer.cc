#include "storage/serializer.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <system_error>
#include <utility>

#include "common/binary_io.h"
#include "index/btree.h"
#include "storage/bundle_format.h"

namespace xcrypt {

namespace {

namespace si = storage_internal;

/// v2: each block carries its generation (wire v3 cache coherence), so a
/// re-hosted daemon keeps stubbing correctly for clients with warm caches.
/// v3: the image carries its own database name and bundle generation
/// right after the header, so a multi-tenant catalog can identify and
/// version-track a bundle without trusting the filename.
/// v4: section-table layout for mmap'd hosting (storage/bundle_format.h).
constexpr uint32_t kMaxVersion = si::kFormatV4;
constexpr uint32_t kMinVersion = si::kFormatV2;

using Writer = BinaryWriter;
using Reader = BinaryReader;

Bytes SerializeBundleV3(const EncryptedDatabase& database,
                        const Metadata& metadata, const std::string& name,
                        uint64_t generation) {
  Bytes out;
  Writer w(&out);
  w.U32(si::kBundleMagic);
  w.U32(si::kFormatV3);
  w.Str(name);
  w.U64(generation);

  // --- database ---
  si::WriteDocument(w, database.skeleton);
  w.U32(static_cast<uint32_t>(database.blocks.size()));
  for (const EncryptedBlock& b : database.blocks) {
    w.I32(b.id);
    w.U32(b.generation);
    w.Blob(b.ciphertext);
    // plaintext_bytes is client-only knowledge: not serialized.
  }
  w.U32(static_cast<uint32_t>(database.marker_of_block.size()));
  for (NodeId id : database.marker_of_block) w.I32(id);

  // --- metadata ---
  w.U32(static_cast<uint32_t>(metadata.dsi_table.entries().size()));
  for (const auto& [token, list] : metadata.dsi_table.entries()) {
    w.Str(token);
    w.U32(static_cast<uint32_t>(list.size()));
    for (const Interval& iv : list) si::WriteInterval(w, iv);
  }
  w.U32(static_cast<uint32_t>(metadata.block_table.entries().size()));
  for (const auto& [id, rep] : metadata.block_table.entries()) {
    w.I32(id);
    si::WriteInterval(w, rep);
  }
  w.U32(static_cast<uint32_t>(metadata.value_indexes.size()));
  for (const auto& [token, tree] : metadata.value_indexes) {
    w.Str(token);
    const auto entries = tree.RangeScan(std::numeric_limits<int64_t>::min(),
                                        std::numeric_limits<int64_t>::max());
    w.U32(static_cast<uint32_t>(entries.size()));
    for (const BTreeEntry& e : entries) {
      w.I64(e.key);
      w.I32(e.block_id);
    }
  }
  w.U32(static_cast<uint32_t>(metadata.public_interval_to_node.size()));
  for (const auto& [iv, node] : metadata.public_interval_to_node) {
    si::WriteInterval(w, iv);
    w.I32(node);
  }
  return out;
}

Bytes SerializeBundleV4(const EncryptedDatabase& database,
                        const Metadata& metadata, const std::string& name,
                        uint64_t generation) {
  // Build each section body standalone, then lay them out behind the
  // section table. Order on disk: index sections first (the bytes a cold
  // attach actually touches stay clustered), payloads last.
  struct Section {
    uint32_t id;
    Bytes body;
  };
  std::vector<Section> sections;
  auto section = [&](uint32_t id) -> Writer {
    sections.push_back({id, Bytes()});
    return Writer(&sections.back().body);
  };

  {
    Writer w = section(si::kSkeleton);
    si::WriteDocument(w, database.skeleton);
  }
  Bytes payloads;
  {
    Writer w = section(si::kBlockIndex);
    w.U32(static_cast<uint32_t>(database.blocks.size()));
    uint64_t off = 0;
    for (const EncryptedBlock& b : database.blocks) {
      w.I32(b.id);
      w.U32(b.generation);
      w.U64(off);
      w.U64(b.ciphertext.size());
      payloads.insert(payloads.end(), b.ciphertext.begin(),
                      b.ciphertext.end());
      off += b.ciphertext.size();
    }
  }
  {
    Writer w = section(si::kMarkers);
    w.U32(static_cast<uint32_t>(database.marker_of_block.size()));
    for (NodeId id : database.marker_of_block) w.I32(id);
  }
  {
    Writer w = section(si::kDsi);
    w.U32(static_cast<uint32_t>(metadata.dsi_table.entries().size()));
    for (const auto& [token, list] : metadata.dsi_table.entries()) {
      w.Str(token);
      w.U32(static_cast<uint32_t>(list.size()));
      for (const Interval& iv : list) si::WriteInterval(w, iv);
    }
  }
  {
    Writer w = section(si::kBlockReps);
    w.U32(static_cast<uint32_t>(metadata.block_table.entries().size()));
    for (const auto& [id, rep] : metadata.block_table.entries()) {
      w.I32(id);
      si::WriteInterval(w, rep);
    }
  }
  {
    // Directory up front (token -> offset/count), entry arrays behind it,
    // so a mapped reader parses one B-tree without touching the others.
    Writer w = section(si::kValueIndexes);
    uint64_t dir_len = 4;
    for (const auto& [token, tree] : metadata.value_indexes) {
      (void)tree;
      dir_len += 4 + token.size() + 8 + 4;
    }
    std::vector<std::pair<std::string, std::vector<BTreeEntry>>> scans;
    for (const auto& [token, tree] : metadata.value_indexes) {
      scans.emplace_back(
          token, tree.RangeScan(std::numeric_limits<int64_t>::min(),
                                std::numeric_limits<int64_t>::max()));
    }
    w.U32(static_cast<uint32_t>(scans.size()));
    uint64_t off = dir_len;
    for (const auto& [token, entries] : scans) {
      w.Str(token);
      w.U64(off);
      w.U32(static_cast<uint32_t>(entries.size()));
      off += static_cast<uint64_t>(entries.size()) * 12;
    }
    for (const auto& [token, entries] : scans) {
      for (const BTreeEntry& e : entries) {
        w.I64(e.key);
        w.I32(e.block_id);
      }
    }
  }
  {
    Writer w = section(si::kPublicMap);
    w.U32(static_cast<uint32_t>(metadata.public_interval_to_node.size()));
    for (const auto& [iv, node] : metadata.public_interval_to_node) {
      si::WriteInterval(w, iv);
      w.I32(node);
    }
  }
  sections.push_back({si::kBlockPayloads, std::move(payloads)});

  Bytes out;
  Writer w(&out);
  w.U32(si::kBundleMagic);
  w.U32(si::kFormatV4);
  w.Str(name);
  w.U64(generation);
  w.U32(static_cast<uint32_t>(sections.size()));
  uint64_t offset = out.size() + sections.size() * 24;
  for (const Section& s : sections) {
    w.U32(s.id);
    w.U32(0);  // reserved
    w.U64(offset);
    w.U64(s.body.size());
    offset += s.body.size();
  }
  for (const Section& s : sections) {
    out.insert(out.end(), s.body.begin(), s.body.end());
  }
  return out;
}

Result<HostedBundle> DeserializeV4(const Bytes& image) {
  auto layout = si::ParseV4Layout(image.data(), image.size());
  if (!layout.ok()) return layout.status();
  auto span = [&](uint32_t id) -> const si::SectionEntry& {
    return *layout->Find(id);  // presence validated by ParseV4Layout
  };

  HostedBundle bundle;
  bundle.name = layout->name;
  bundle.generation = layout->generation;

  {
    const si::SectionEntry& s = span(si::kSkeleton);
    Reader r(image.data() + s.offset, s.length);
    auto skeleton = si::ReadDocument(r);
    if (!skeleton.ok()) return skeleton.status();
    if (!r.AtEnd()) return Status::Corruption("trailing bytes in skeleton");
    bundle.database.skeleton = std::move(*skeleton);
  }
  const int32_t node_count = bundle.database.skeleton.node_count();

  const si::SectionEntry& payloads = span(si::kBlockPayloads);
  {
    const si::SectionEntry& s = span(si::kBlockIndex);
    auto refs =
        si::ParseBlockIndex(image.data() + s.offset, s.length, payloads.length);
    if (!refs.ok()) return refs.status();
    bundle.database.blocks.reserve(refs->size());
    for (const si::BlockRef& ref : *refs) {
      EncryptedBlock block;
      block.id = ref.id;
      block.generation = ref.generation;
      const uint8_t* begin = image.data() + payloads.offset + ref.offset;
      block.ciphertext.assign(begin, begin + ref.length);
      bundle.database.blocks.push_back(std::move(block));
    }
  }
  {
    const si::SectionEntry& s = span(si::kMarkers);
    XCRYPT_RETURN_NOT_OK(si::ParseMarkers(image.data() + s.offset, s.length,
                                          node_count,
                                          &bundle.database.marker_of_block));
  }
  {
    const si::SectionEntry& s = span(si::kDsi);
    XCRYPT_RETURN_NOT_OK(si::ParseDsi(image.data() + s.offset, s.length,
                                      &bundle.metadata.dsi_table));
  }
  {
    const si::SectionEntry& s = span(si::kBlockReps);
    XCRYPT_RETURN_NOT_OK(si::ParseBlockReps(image.data() + s.offset, s.length,
                                            &bundle.metadata.block_table));
  }
  {
    const si::SectionEntry& s = span(si::kValueIndexes);
    auto dir = si::ParseValueIndexDirectory(image.data() + s.offset, s.length);
    if (!dir.ok()) return dir.status();
    for (const si::ValueIndexRef& ref : *dir) {
      BPlusTree tree;
      tree.BulkLoad(si::ParseValueIndexEntries(image.data() + s.offset, ref));
      bundle.metadata.value_indexes.emplace(ref.token, std::move(tree));
    }
  }
  {
    const si::SectionEntry& s = span(si::kPublicMap);
    XCRYPT_RETURN_NOT_OK(
        si::ParsePublicMap(image.data() + s.offset, s.length, node_count,
                           &bundle.metadata.public_interval_to_node));
  }
  return bundle;
}

}  // namespace

Bytes SerializeBundle(const EncryptedDatabase& database,
                      const Metadata& metadata, const std::string& name,
                      uint64_t generation, BundleFormat format) {
  return format == BundleFormat::kV4
             ? SerializeBundleV4(database, metadata, name, generation)
             : SerializeBundleV3(database, metadata, name, generation);
}

Result<HostedBundle> DeserializeBundle(const Bytes& image,
                                       const std::string& expected_name) {
  Reader r(image);
  if (r.U32() != si::kBundleMagic) return Status::Corruption("bad magic");
  const uint32_t version = r.U32();
  if (version < kMinVersion || version > kMaxVersion) {
    return Status::Unsupported("bundle version " + std::to_string(version));
  }

  HostedBundle bundle;
  if (version == si::kFormatV4) {
    auto parsed = DeserializeV4(image);
    if (!parsed.ok()) return parsed.status();
    bundle = std::move(*parsed);
  }
  if (version >= si::kFormatV3 && version != si::kFormatV4) {
    bundle.name = r.Str();
    bundle.generation = r.U64();
    if (r.failed()) return Status::Corruption("truncated bundle header");
  }
  if (!expected_name.empty() && !bundle.name.empty() &&
      bundle.name != expected_name) {
    // A mis-filed image must not be served under the catalog's routing
    // name: queries for one tenant would silently hit another's data.
    return Status::InvalidArgument("bundle declares name '" + bundle.name +
                                   "' but was loaded as '" + expected_name +
                                   "'");
  }
  if (version == si::kFormatV4) return bundle;

  auto skeleton = si::ReadDocument(r);
  if (!skeleton.ok()) return skeleton.status();
  bundle.database.skeleton = std::move(*skeleton);

  const uint32_t num_blocks = r.U32();
  if (!r.CanHold(num_blocks, 12)) {
    return Status::Corruption("bad block count");
  }
  bundle.database.blocks.reserve(num_blocks);
  for (uint32_t i = 0; i < num_blocks && !r.failed(); ++i) {
    EncryptedBlock block;
    block.id = r.I32();
    block.generation = r.U32();
    block.ciphertext = r.Blob();
    bundle.database.blocks.push_back(std::move(block));
  }
  const uint32_t num_markers = r.U32();
  if (!r.CanHold(num_markers, 4)) {
    return Status::Corruption("bad marker count");
  }
  bundle.database.marker_of_block.reserve(num_markers);
  for (uint32_t i = 0; i < num_markers && !r.failed(); ++i) {
    const NodeId id = r.I32();
    if (id < kNullNode || id >= bundle.database.skeleton.node_count()) {
      return Status::Corruption("marker node out of range");
    }
    bundle.database.marker_of_block.push_back(id);
  }

  const uint32_t num_tokens = r.U32();
  for (uint32_t i = 0; i < num_tokens && !r.failed(); ++i) {
    const std::string token = r.Str();
    const uint32_t num_intervals = r.U32();
    if (!r.CanHold(num_intervals, 16)) {
      return Status::Corruption("bad DSI interval count");
    }
    for (uint32_t j = 0; j < num_intervals && !r.failed(); ++j) {
      bundle.metadata.dsi_table.Add(token, si::ReadInterval(r));
    }
  }
  bundle.metadata.dsi_table.Seal();

  const uint32_t num_reps = r.U32();
  for (uint32_t i = 0; i < num_reps && !r.failed(); ++i) {
    const int id = r.I32();
    bundle.metadata.block_table.Add(id, si::ReadInterval(r));
  }

  const uint32_t num_indexes = r.U32();
  for (uint32_t i = 0; i < num_indexes && !r.failed(); ++i) {
    const std::string token = r.Str();
    const uint32_t num_entries = r.U32();
    if (!r.CanHold(num_entries, 12)) {
      return Status::Corruption("bad value-index entry count");
    }
    std::vector<BTreeEntry> entries;
    entries.reserve(num_entries);
    for (uint32_t j = 0; j < num_entries && !r.failed(); ++j) {
      BTreeEntry e;
      e.key = r.I64();
      e.block_id = r.I32();
      entries.push_back(e);
    }
    BPlusTree tree;
    tree.BulkLoad(std::move(entries));
    bundle.metadata.value_indexes.emplace(token, std::move(tree));
  }

  const uint32_t num_public = r.U32();
  for (uint32_t i = 0; i < num_public && !r.failed(); ++i) {
    const Interval iv = si::ReadInterval(r);
    const NodeId node = r.I32();
    if (node < 0 || node >= bundle.database.skeleton.node_count()) {
      return Status::Corruption("public node out of range");
    }
    bundle.metadata.public_interval_to_node[iv] = node;
  }

  if (r.failed()) return Status::Corruption("truncated bundle");
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in bundle");
  return bundle;
}

Status SaveBundle(const EncryptedDatabase& database, const Metadata& metadata,
                  const std::string& path, const std::string& name,
                  uint64_t generation, BundleFormat format) {
  const Bytes image =
      SerializeBundle(database, metadata, name, generation, format);
  // Write-then-rename: a catalog daemon hot-reloading `path` must only
  // ever see the previous image or this one, never a half-written file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot replace " + path + ": " + ec.message());
  }
  return Status::Ok();
}

Result<HostedBundle> LoadBundle(const std::string& path,
                                const std::string& expected_name) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes image(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(image.data()), size);
  if (!in) return Status::Corruption("short read from " + path);
  return DeserializeBundle(image, expected_name);
}

Result<BundleHeader> ReadBundleHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  // Magic + version + a length-prefixed name (catalog names are short)
  // + generation comfortably fit in this prefix (v3 and v4 share it).
  Bytes prefix(512);
  in.read(reinterpret_cast<char*>(prefix.data()),
          static_cast<std::streamsize>(prefix.size()));
  prefix.resize(static_cast<size_t>(in.gcount()));

  Reader r(prefix);
  if (r.U32() != si::kBundleMagic) return Status::Corruption("bad magic");
  BundleHeader header;
  header.version = r.U32();
  if (r.failed()) return Status::Corruption("truncated bundle header");
  if (header.version < kMinVersion || header.version > kMaxVersion) {
    return Status::Unsupported("bundle version " +
                               std::to_string(header.version));
  }
  if (header.version >= si::kFormatV3) {
    header.name = r.Str();
    header.generation = r.U64();
    if (r.failed()) return Status::Corruption("truncated bundle header");
    header.has_generation = true;
  }
  return header;
}

}  // namespace xcrypt
