#include "storage/serializer.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <system_error>

#include "common/binary_io.h"
#include "index/btree.h"

namespace xcrypt {

namespace {

constexpr uint32_t kMagic = 0x58435231;  // "XCR1"
/// v2: each block carries its generation (wire v3 cache coherence), so a
/// re-hosted daemon keeps stubbing correctly for clients with warm caches.
/// v3: the image carries its own database name and bundle generation
/// right after the header, so a multi-tenant catalog can identify and
/// version-track a bundle without trusting the filename.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 2;

using Writer = BinaryWriter;
using Reader = BinaryReader;

void WriteDocument(Writer& w, const Document& doc) {
  w.I32(doc.node_count());
  for (NodeId id = 0; id < doc.node_count(); ++id) {
    const Node& n = doc.node(id);
    w.Str(n.tag);
    w.Str(n.value);
    w.I32(n.parent);
    w.U8(n.is_attribute ? 1 : 0);
  }
}

Result<Document> ReadDocument(Reader& r) {
  const int32_t count = r.I32();
  // Each node occupies at least two length prefixes, a parent id, and a
  // flag byte; a count the unread suffix cannot possibly hold is
  // corruption, rejected before the arena grows.
  if (r.failed() || count < 0 ||
      !r.CanHold(static_cast<uint64_t>(count), 13)) {
    return Status::Corruption("bad document node count");
  }
  Document doc;
  for (NodeId id = 0; id < count; ++id) {
    const std::string tag = r.Str();
    const std::string value = r.Str();
    const NodeId parent = r.I32();
    const bool is_attribute = r.U8() != 0;
    if (r.failed()) return Status::Corruption("truncated document node");
    if (id == 0) {
      if (parent != kNullNode) {
        return Status::Corruption("root node has a parent");
      }
      doc.AddRoot(tag);
    } else {
      if (parent < 0 || parent >= id) {
        // Parents always precede children in arena order; a forward or
        // negative parent is corruption (detached nodes are not shipped).
        return Status::Corruption("node parent out of order");
      }
      doc.AddChild(parent, tag);
    }
    doc.node(id).value = value;
    doc.node(id).is_attribute = is_attribute;
  }
  return doc;
}

void WriteInterval(Writer& w, const Interval& iv) {
  w.F64(iv.min);
  w.F64(iv.max);
}

Interval ReadInterval(Reader& r) {
  Interval iv;
  iv.min = r.F64();
  iv.max = r.F64();
  return iv;
}

}  // namespace

Bytes SerializeBundle(const EncryptedDatabase& database,
                      const Metadata& metadata, const std::string& name,
                      uint64_t generation) {
  Bytes out;
  Writer w(&out);
  w.U32(kMagic);
  w.U32(kVersion);
  w.Str(name);
  w.U64(generation);

  // --- database ---
  WriteDocument(w, database.skeleton);
  w.U32(static_cast<uint32_t>(database.blocks.size()));
  for (const EncryptedBlock& b : database.blocks) {
    w.I32(b.id);
    w.U32(b.generation);
    w.Blob(b.ciphertext);
    // plaintext_bytes is client-only knowledge: not serialized.
  }
  w.U32(static_cast<uint32_t>(database.marker_of_block.size()));
  for (NodeId id : database.marker_of_block) w.I32(id);

  // --- metadata ---
  w.U32(static_cast<uint32_t>(metadata.dsi_table.entries().size()));
  for (const auto& [token, list] : metadata.dsi_table.entries()) {
    w.Str(token);
    w.U32(static_cast<uint32_t>(list.size()));
    for (const Interval& iv : list) WriteInterval(w, iv);
  }
  w.U32(static_cast<uint32_t>(metadata.block_table.entries().size()));
  for (const auto& [id, rep] : metadata.block_table.entries()) {
    w.I32(id);
    WriteInterval(w, rep);
  }
  w.U32(static_cast<uint32_t>(metadata.value_indexes.size()));
  for (const auto& [token, tree] : metadata.value_indexes) {
    w.Str(token);
    const auto entries = tree.RangeScan(std::numeric_limits<int64_t>::min(),
                                        std::numeric_limits<int64_t>::max());
    w.U32(static_cast<uint32_t>(entries.size()));
    for (const BTreeEntry& e : entries) {
      w.I64(e.key);
      w.I32(e.block_id);
    }
  }
  w.U32(static_cast<uint32_t>(metadata.public_interval_to_node.size()));
  for (const auto& [iv, node] : metadata.public_interval_to_node) {
    WriteInterval(w, iv);
    w.I32(node);
  }
  return out;
}

Result<HostedBundle> DeserializeBundle(const Bytes& image,
                                       const std::string& expected_name) {
  Reader r(image);
  if (r.U32() != kMagic) return Status::Corruption("bad magic");
  const uint32_t version = r.U32();
  if (version < kMinVersion || version > kVersion) {
    return Status::Unsupported("bundle version " + std::to_string(version));
  }

  HostedBundle bundle;
  if (version >= 3) {
    bundle.name = r.Str();
    bundle.generation = r.U64();
    if (r.failed()) return Status::Corruption("truncated bundle header");
  }
  if (!expected_name.empty() && !bundle.name.empty() &&
      bundle.name != expected_name) {
    // A mis-filed image must not be served under the catalog's routing
    // name: queries for one tenant would silently hit another's data.
    return Status::InvalidArgument("bundle declares name '" + bundle.name +
                                   "' but was loaded as '" + expected_name +
                                   "'");
  }
  auto skeleton = ReadDocument(r);
  if (!skeleton.ok()) return skeleton.status();
  bundle.database.skeleton = std::move(*skeleton);

  const uint32_t num_blocks = r.U32();
  if (!r.CanHold(num_blocks, 12)) {
    return Status::Corruption("bad block count");
  }
  bundle.database.blocks.reserve(num_blocks);
  for (uint32_t i = 0; i < num_blocks && !r.failed(); ++i) {
    EncryptedBlock block;
    block.id = r.I32();
    block.generation = r.U32();
    block.ciphertext = r.Blob();
    bundle.database.blocks.push_back(std::move(block));
  }
  const uint32_t num_markers = r.U32();
  if (!r.CanHold(num_markers, 4)) {
    return Status::Corruption("bad marker count");
  }
  bundle.database.marker_of_block.reserve(num_markers);
  for (uint32_t i = 0; i < num_markers && !r.failed(); ++i) {
    const NodeId id = r.I32();
    if (id < kNullNode || id >= bundle.database.skeleton.node_count()) {
      return Status::Corruption("marker node out of range");
    }
    bundle.database.marker_of_block.push_back(id);
  }

  const uint32_t num_tokens = r.U32();
  for (uint32_t i = 0; i < num_tokens && !r.failed(); ++i) {
    const std::string token = r.Str();
    const uint32_t num_intervals = r.U32();
    if (!r.CanHold(num_intervals, 16)) {
      return Status::Corruption("bad DSI interval count");
    }
    for (uint32_t j = 0; j < num_intervals && !r.failed(); ++j) {
      bundle.metadata.dsi_table.Add(token, ReadInterval(r));
    }
  }
  bundle.metadata.dsi_table.Seal();

  const uint32_t num_reps = r.U32();
  for (uint32_t i = 0; i < num_reps && !r.failed(); ++i) {
    const int id = r.I32();
    bundle.metadata.block_table.Add(id, ReadInterval(r));
  }

  const uint32_t num_indexes = r.U32();
  for (uint32_t i = 0; i < num_indexes && !r.failed(); ++i) {
    const std::string token = r.Str();
    const uint32_t num_entries = r.U32();
    if (!r.CanHold(num_entries, 12)) {
      return Status::Corruption("bad value-index entry count");
    }
    std::vector<BTreeEntry> entries;
    entries.reserve(num_entries);
    for (uint32_t j = 0; j < num_entries && !r.failed(); ++j) {
      BTreeEntry e;
      e.key = r.I64();
      e.block_id = r.I32();
      entries.push_back(e);
    }
    BPlusTree tree;
    tree.BulkLoad(std::move(entries));
    bundle.metadata.value_indexes.emplace(token, std::move(tree));
  }

  const uint32_t num_public = r.U32();
  for (uint32_t i = 0; i < num_public && !r.failed(); ++i) {
    const Interval iv = ReadInterval(r);
    const NodeId node = r.I32();
    if (node < 0 || node >= bundle.database.skeleton.node_count()) {
      return Status::Corruption("public node out of range");
    }
    bundle.metadata.public_interval_to_node[iv] = node;
  }

  if (r.failed()) return Status::Corruption("truncated bundle");
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in bundle");
  return bundle;
}

Status SaveBundle(const EncryptedDatabase& database, const Metadata& metadata,
                  const std::string& path, const std::string& name,
                  uint64_t generation) {
  const Bytes image = SerializeBundle(database, metadata, name, generation);
  // Write-then-rename: a catalog daemon hot-reloading `path` must only
  // ever see the previous image or this one, never a half-written file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot replace " + path + ": " + ec.message());
  }
  return Status::Ok();
}

Result<HostedBundle> LoadBundle(const std::string& path,
                                const std::string& expected_name) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes image(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(image.data()), size);
  if (!in) return Status::Corruption("short read from " + path);
  return DeserializeBundle(image, expected_name);
}

Result<BundleHeader> PeekBundleHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  // Magic + version + a length-prefixed name (catalog names are short)
  // + generation comfortably fit in this prefix.
  Bytes prefix(512);
  in.read(reinterpret_cast<char*>(prefix.data()),
          static_cast<std::streamsize>(prefix.size()));
  prefix.resize(static_cast<size_t>(in.gcount()));

  Reader r(prefix);
  if (r.U32() != kMagic) return Status::Corruption("bad magic");
  BundleHeader header;
  header.version = r.U32();
  if (r.failed()) return Status::Corruption("truncated bundle header");
  if (header.version < kMinVersion || header.version > kVersion) {
    return Status::Unsupported("bundle version " +
                               std::to_string(header.version));
  }
  if (header.version >= 3) {
    header.name = r.Str();
    header.generation = r.U64();
    if (r.failed()) return Status::Corruption("truncated bundle header");
    header.has_generation = true;
  }
  return header;
}

}  // namespace xcrypt
