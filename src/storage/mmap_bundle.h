#ifndef XCRYPT_STORAGE_MMAP_BUNDLE_H_
#define XCRYPT_STORAGE_MMAP_BUNDLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/encryptor.h"
#include "core/metadata.h"
#include "storage/bundle_format.h"
#include "storage/serializer.h"

namespace xcrypt {

/// Zero-copy reader over a format-v4 bundle file. Open() maps the image,
/// validates the header and section table (CanHold-style bounds checks,
/// disjointness, required sections), and parses only the tiny block
/// index — no skeleton, no DSI table, no B-trees, and above all no block
/// payloads. Everything else faults in on demand:
///
///  - EnsureResident() materializes the index sections (skeleton, DSI,
///    block representatives, markers, public map, value-index directory)
///    on first use — the point a lazy ServerEngine becomes queryable;
///  - ValueIndex() parses one OPESS B-tree per distinct token, on the
///    first query that touches it;
///  - BlockPayload() hands out a std::span straight into the mapping, so
///    ciphertext pages are read by the kernel only when a response
///    actually ships them.
///
/// A corrupt image is rejected with Corruption at Open (section table) or
/// at EnsureResident (section contents) — never a crash: every section
/// parse runs through the bounds-latching BinaryReader, and payload
/// slices were range-checked against the payload section at Open.
///
/// Thread-safe: Open-time state is immutable; lazy state is built under
/// internal locks and read lock-free once published.
class MmapBundleReader {
 public:
  /// Maps `path` and validates its prologue. When `expected_name` is
  /// non-empty, a differing self-declared name is rejected with
  /// InvalidArgument (same contract as DeserializeBundle).
  static Result<std::unique_ptr<MmapBundleReader>> Open(
      const std::string& path, const std::string& expected_name = {});

  ~MmapBundleReader();
  MmapBundleReader(const MmapBundleReader&) = delete;
  MmapBundleReader& operator=(const MmapBundleReader&) = delete;

  const std::string& path() const { return path_; }
  const std::string& name() const { return name_; }
  uint64_t generation() const { return generation_; }

  /// Bytes of file currently mapped (the whole image).
  int64_t MappedBytes() const { return static_cast<int64_t>(size_); }

  /// Base of the read-only mapping — for residency diagnostics and tests
  /// (mincore probes); never write through it.
  const uint8_t* MappedBase() const { return data_; }

  /// Heap bytes materialized from the mapping so far (index sections and
  /// parsed B-trees, measured by their on-disk encoded size). This is
  /// what a memory-budgeted catalog charges the bundle for: payload pages
  /// are clean page cache the kernel reclaims on its own.
  int64_t ResidentBytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

  // --- block surface (valid right after Open: the index is tiny) ---
  size_t BlockCount() const { return blocks_.size(); }
  int BlockId(size_t i) const { return blocks_[i].id; }
  uint32_t BlockGeneration(size_t i) const { return blocks_[i].generation; }
  std::span<const uint8_t> BlockPayload(size_t i) const {
    return {payloads_ + blocks_[i].offset,
            static_cast<size_t>(blocks_[i].length)};
  }
  int64_t TotalCiphertextBytes() const { return ciphertext_bytes_; }

  // --- index surface (faults in per section) ---

  /// Materializes the index sections if not yet resident. Idempotent and
  /// cheap once done (one atomic load).
  Status EnsureResident() const;

  /// Skeleton + markers with an empty block vector — the shape a lazy
  /// ServerEngine points its database side at. Valid (and immutable)
  /// after EnsureResident() returned Ok.
  const EncryptedDatabase& database() const { return shell_; }

  /// DSI table, block table, and public map; value_indexes stays empty —
  /// B-trees load per token through ValueIndex(). Valid after
  /// EnsureResident() returned Ok.
  const Metadata& metadata() const { return meta_; }

  /// The OPESS B-tree for `token`, parsed from the mapping on first
  /// request; nullptr when the bundle has no index for that token.
  /// Returned pointers stay valid for the reader's lifetime. Requires a
  /// successful EnsureResident().
  const BPlusTree* ValueIndex(const std::string& token) const;

  /// Full eager copy of the bundle (every section parsed, every payload
  /// copied) — the escape hatch for paths that must mutate, like a
  /// catalog delta apply.
  Result<HostedBundle> Materialize() const;

 private:
  MmapBundleReader() = default;

  const uint8_t* SectionData(const storage_internal::SectionEntry& s) const {
    return data_ + s.offset;
  }

  std::string path_;
  std::string name_;
  uint64_t generation_ = 0;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  storage_internal::V4Layout layout_;
  std::vector<storage_internal::BlockRef> blocks_;
  const uint8_t* payloads_ = nullptr;
  int64_t ciphertext_bytes_ = 0;

  /// Lazy residency. `core_resident_` publishes shell_/meta_/vi_dir_
  /// (release on store, acquire on the fast-path load); trees_ grows
  /// under vi_mu_ with stable map nodes, so returned B-tree pointers
  /// survive later inserts.
  mutable std::mutex resident_mu_;
  mutable std::atomic<bool> core_resident_{false};
  mutable EncryptedDatabase shell_;
  mutable Metadata meta_;
  mutable std::vector<storage_internal::ValueIndexRef> vi_dir_;
  mutable std::shared_mutex vi_mu_;
  mutable std::map<std::string, BPlusTree> trees_;
  mutable std::atomic<int64_t> resident_bytes_{0};
};

}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_MMAP_BUNDLE_H_
