#include "storage/bundle_format.h"

#include <algorithm>

namespace xcrypt {
namespace storage_internal {

const SectionEntry* V4Layout::Find(uint32_t id) const {
  for (const SectionEntry& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Result<V4Layout> ParseV4Layout(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  if (r.U32() != kBundleMagic) return Status::Corruption("bad magic");
  const uint32_t version = r.U32();
  if (version != kFormatV4) {
    return Status::Unsupported("not a v4 bundle (version " +
                               std::to_string(version) + ")");
  }
  V4Layout layout;
  layout.name = r.Str();
  layout.generation = r.U64();
  const uint32_t count = r.U32();
  // Each table row is 24 bytes; a count the rest of the image cannot hold
  // is corruption, rejected before the vector grows.
  if (r.failed() || !r.CanHold(count, 24)) {
    return Status::Corruption("bad section table");
  }
  layout.sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SectionEntry s;
    s.id = r.U32();
    r.U32();  // reserved
    s.offset = r.U64();
    s.length = r.U64();
    if (r.failed()) return Status::Corruption("truncated section table");
    // Overflow-safe bounds check: the section must lie inside the image.
    if (s.offset > size || s.length > size - s.offset) {
      return Status::Corruption("section " + std::to_string(s.id) +
                                " out of bounds");
    }
    layout.sections.push_back(s);
  }

  // Sections must be disjoint and each id unique: an overlapping table
  // could alias the payload region into an index section and make "read
  // in place" lie about what it reads.
  std::vector<SectionEntry> sorted = layout.sections;
  std::sort(sorted.begin(), sorted.end(),
            [](const SectionEntry& a, const SectionEntry& b) {
              return a.offset < b.offset;
            });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].offset < sorted[i - 1].offset + sorted[i - 1].length) {
      return Status::Corruption("overlapping sections");
    }
  }
  for (size_t i = 0; i < layout.sections.size(); ++i) {
    for (size_t j = i + 1; j < layout.sections.size(); ++j) {
      if (layout.sections[i].id == layout.sections[j].id) {
        return Status::Corruption("duplicate section id " +
                                  std::to_string(layout.sections[i].id));
      }
    }
  }
  for (uint32_t id : {kSkeleton, kBlockIndex, kBlockPayloads, kMarkers, kDsi,
                      kBlockReps, kValueIndexes, kPublicMap}) {
    if (layout.Find(id) == nullptr) {
      return Status::Corruption("missing section " + std::to_string(id));
    }
  }
  return layout;
}

void WriteDocument(BinaryWriter& w, const Document& doc) {
  w.I32(doc.node_count());
  for (NodeId id = 0; id < doc.node_count(); ++id) {
    const Node& n = doc.node(id);
    w.Str(n.tag);
    w.Str(n.value);
    w.I32(n.parent);
    w.U8(n.is_attribute ? 1 : 0);
  }
}

Result<Document> ReadDocument(BinaryReader& r) {
  const int32_t count = r.I32();
  // Each node occupies at least two length prefixes, a parent id, and a
  // flag byte; a count the unread suffix cannot possibly hold is
  // corruption, rejected before the arena grows.
  if (r.failed() || count < 0 ||
      !r.CanHold(static_cast<uint64_t>(count), 13)) {
    return Status::Corruption("bad document node count");
  }
  Document doc;
  for (NodeId id = 0; id < count; ++id) {
    const std::string tag = r.Str();
    const std::string value = r.Str();
    const NodeId parent = r.I32();
    const bool is_attribute = r.U8() != 0;
    if (r.failed()) return Status::Corruption("truncated document node");
    if (id == 0) {
      if (parent != kNullNode) {
        return Status::Corruption("root node has a parent");
      }
      doc.AddRoot(tag);
    } else {
      if (parent < 0 || parent >= id) {
        // Parents always precede children in arena order; a forward or
        // negative parent is corruption (detached nodes are not shipped).
        return Status::Corruption("node parent out of order");
      }
      doc.AddChild(parent, tag);
    }
    doc.node(id).value = value;
    doc.node(id).is_attribute = is_attribute;
  }
  return doc;
}

void WriteInterval(BinaryWriter& w, const Interval& iv) {
  w.F64(iv.min);
  w.F64(iv.max);
}

Interval ReadInterval(BinaryReader& r) {
  Interval iv;
  iv.min = r.F64();
  iv.max = r.F64();
  return iv;
}

Result<std::vector<BlockRef>> ParseBlockIndex(const uint8_t* data, size_t size,
                                              uint64_t payloads_length) {
  BinaryReader r(data, size);
  const uint32_t count = r.U32();
  if (r.failed() || !r.CanHold(count, 24)) {
    return Status::Corruption("bad block index count");
  }
  std::vector<BlockRef> refs;
  refs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BlockRef ref;
    ref.id = r.I32();
    ref.generation = r.U32();
    ref.offset = r.U64();
    ref.length = r.U64();
    if (r.failed()) return Status::Corruption("truncated block index");
    if (ref.offset > payloads_length ||
        ref.length > payloads_length - ref.offset) {
      return Status::Corruption("block payload out of bounds");
    }
    refs.push_back(ref);
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in block index");
  return refs;
}

Status ParseMarkers(const uint8_t* data, size_t size, int32_t node_count,
                    std::vector<NodeId>* out) {
  BinaryReader r(data, size);
  const uint32_t count = r.U32();
  if (r.failed() || !r.CanHold(count, 4)) {
    return Status::Corruption("bad marker count");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const NodeId id = r.I32();
    if (r.failed()) return Status::Corruption("truncated markers");
    if (id < kNullNode || id >= node_count) {
      return Status::Corruption("marker node out of range");
    }
    out->push_back(id);
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in markers");
  return Status::Ok();
}

Status ParseDsi(const uint8_t* data, size_t size, DsiTable* out) {
  BinaryReader r(data, size);
  const uint32_t num_tokens = r.U32();
  for (uint32_t i = 0; i < num_tokens && !r.failed(); ++i) {
    const std::string token = r.Str();
    const uint32_t num_intervals = r.U32();
    if (!r.CanHold(num_intervals, 16)) {
      return Status::Corruption("bad DSI interval count");
    }
    for (uint32_t j = 0; j < num_intervals && !r.failed(); ++j) {
      out->Add(token, ReadInterval(r));
    }
  }
  if (r.failed()) return Status::Corruption("truncated DSI table");
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in DSI table");
  out->Seal();
  return Status::Ok();
}

Status ParseBlockReps(const uint8_t* data, size_t size, BlockTable* out) {
  BinaryReader r(data, size);
  const uint32_t count = r.U32();
  if (r.failed() || !r.CanHold(count, 20)) {
    return Status::Corruption("bad block table count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    const int id = r.I32();
    const Interval rep = ReadInterval(r);
    if (r.failed()) return Status::Corruption("truncated block table");
    out->Add(id, rep);
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in block table");
  return Status::Ok();
}

Status ParsePublicMap(const uint8_t* data, size_t size, int32_t node_count,
                      std::map<Interval, NodeId>* out) {
  BinaryReader r(data, size);
  const uint32_t count = r.U32();
  if (r.failed() || !r.CanHold(count, 20)) {
    return Status::Corruption("bad public map count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    const Interval iv = ReadInterval(r);
    const NodeId node = r.I32();
    if (r.failed()) return Status::Corruption("truncated public map");
    if (node < 0 || node >= node_count) {
      return Status::Corruption("public node out of range");
    }
    (*out)[iv] = node;
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in public map");
  return Status::Ok();
}

Result<std::vector<ValueIndexRef>> ParseValueIndexDirectory(
    const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  const uint32_t count = r.U32();
  // A directory row is at least a token length prefix + offset + count.
  if (r.failed() || !r.CanHold(count, 16)) {
    return Status::Corruption("bad value-index count");
  }
  std::vector<ValueIndexRef> refs;
  refs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ValueIndexRef ref;
    ref.token = r.Str();
    ref.offset = r.U64();
    ref.count = r.U32();
    if (r.failed()) return Status::Corruption("truncated value-index dir");
    // Validated here once so the per-token lazy parse is infallible: the
    // whole entry array must lie inside the section.
    if (ref.offset > size ||
        static_cast<uint64_t>(ref.count) * 12 > size - ref.offset) {
      return Status::Corruption("value-index entries out of bounds");
    }
    refs.push_back(std::move(ref));
  }
  return refs;
}

std::vector<BTreeEntry> ParseValueIndexEntries(const uint8_t* section_data,
                                               const ValueIndexRef& ref) {
  BinaryReader r(section_data + ref.offset, static_cast<size_t>(ref.count) * 12);
  std::vector<BTreeEntry> entries;
  entries.reserve(ref.count);
  for (uint32_t i = 0; i < ref.count; ++i) {
    BTreeEntry e;
    e.key = r.I64();
    e.block_id = r.I32();
    entries.push_back(e);
  }
  return entries;
}

}  // namespace storage_internal
}  // namespace xcrypt
