#ifndef XCRYPT_STORAGE_SERIALIZER_H_
#define XCRYPT_STORAGE_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "core/encryptor.h"
#include "core/metadata.h"

namespace xcrypt {

/// What the client actually ships to the service provider (Figure 1):
/// the encrypted database η(D) plus the metadata M. The server can be
/// reconstructed from this bundle alone — no keys, no plaintext.
struct HostedBundle {
  EncryptedDatabase database;
  Metadata metadata;
  /// Self-declared database name (format v3); empty for v2 images. A
  /// catalog routes by filename stem but keeps this for cross-checking.
  std::string name;
  /// Owner-assigned bundle generation (format v3): bumped on re-upload so
  /// a catalog can tell a genuinely newer bundle from a same-age rewrite.
  uint64_t generation = 0;
};

/// Serializes a hosted bundle into a self-contained binary image
/// (magic + version header, little-endian fixed-width integers,
/// length-prefixed strings). The image contains only server-visible
/// state: ciphertext blocks, the pruned skeleton, the DSI/block tables,
/// and the OPESS B-tree entries. Client-only fields (per-block plaintext
/// sizes) are deliberately omitted. `name`/`generation` identify the
/// bundle to a multi-tenant catalog (format v3).
Bytes SerializeBundle(const EncryptedDatabase& database,
                      const Metadata& metadata,
                      const std::string& name = std::string(),
                      uint64_t generation = 0);

/// Parses an image produced by SerializeBundle. Fails with Corruption on
/// truncated or malformed input and with Unsupported on a version
/// mismatch. v2 images (no name/generation) still load, with those
/// fields defaulted.
Result<HostedBundle> DeserializeBundle(const Bytes& image);

/// Convenience file wrappers.
Status SaveBundle(const EncryptedDatabase& database, const Metadata& metadata,
                  const std::string& path,
                  const std::string& name = std::string(),
                  uint64_t generation = 0);
Result<HostedBundle> LoadBundle(const std::string& path);

}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_SERIALIZER_H_
