#ifndef XCRYPT_STORAGE_SERIALIZER_H_
#define XCRYPT_STORAGE_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "core/encryptor.h"
#include "core/metadata.h"

namespace xcrypt {

/// What the client actually ships to the service provider (Figure 1):
/// the encrypted database η(D) plus the metadata M. The server can be
/// reconstructed from this bundle alone — no keys, no plaintext.
struct HostedBundle {
  EncryptedDatabase database;
  Metadata metadata;
};

/// Serializes a hosted bundle into a self-contained binary image
/// (magic + version header, little-endian fixed-width integers,
/// length-prefixed strings). The image contains only server-visible
/// state: ciphertext blocks, the pruned skeleton, the DSI/block tables,
/// and the OPESS B-tree entries. Client-only fields (per-block plaintext
/// sizes) are deliberately omitted.
Bytes SerializeBundle(const EncryptedDatabase& database,
                      const Metadata& metadata);

/// Parses an image produced by SerializeBundle. Fails with Corruption on
/// truncated or malformed input and with Unsupported on a version
/// mismatch.
Result<HostedBundle> DeserializeBundle(const Bytes& image);

/// Convenience file wrappers.
Status SaveBundle(const EncryptedDatabase& database, const Metadata& metadata,
                  const std::string& path);
Result<HostedBundle> LoadBundle(const std::string& path);

}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_SERIALIZER_H_
