#ifndef XCRYPT_STORAGE_SERIALIZER_H_
#define XCRYPT_STORAGE_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "core/encryptor.h"
#include "core/metadata.h"

namespace xcrypt {

/// What the client actually ships to the service provider (Figure 1):
/// the encrypted database η(D) plus the metadata M. The server can be
/// reconstructed from this bundle alone — no keys, no plaintext.
struct HostedBundle {
  EncryptedDatabase database;
  Metadata metadata;
  /// Self-declared database name (format v3+); empty for v2 images. A
  /// catalog routes by filename stem and rejects images whose declared
  /// name disagrees with that routing (pass `expected_name` below).
  std::string name;
  /// Owner-assigned bundle generation (format v3+): bumped on re-upload so
  /// a catalog can tell a genuinely newer bundle from a same-age rewrite.
  uint64_t generation = 0;
};

/// On-disk image formats SerializeBundle can emit.
///  - kV3: the sequential stream format — smallest header, must be parsed
///    front to back, the whole image deserializes eagerly.
///  - kV4: the mmap-friendly format — a section table up front with
///    fixed-width offsets/lengths, index sections readable in place, and
///    block ciphertext in one raw payload region that a mapped reader
///    demand-pages instead of decoding (storage/mmap_bundle.h).
/// Both read back through DeserializeBundle; v4 additionally opens
/// zero-copy through MmapBundleReader.
enum class BundleFormat { kV3, kV4 };

/// Serializes a hosted bundle into a self-contained binary image
/// (magic + version header, little-endian fixed-width integers,
/// length-prefixed strings). The image contains only server-visible
/// state: ciphertext blocks, the pruned skeleton, the DSI/block tables,
/// and the OPESS B-tree entries. Client-only fields (per-block plaintext
/// sizes) are deliberately omitted. `name`/`generation` identify the
/// bundle to a multi-tenant catalog (format v3+).
Bytes SerializeBundle(const EncryptedDatabase& database,
                      const Metadata& metadata,
                      const std::string& name = std::string(),
                      uint64_t generation = 0,
                      BundleFormat format = BundleFormat::kV3);

/// Parses an image produced by SerializeBundle — any supported version
/// (v2 through v4). Fails with Corruption on truncated or malformed input
/// and with Unsupported on a version mismatch. v2 images (no
/// name/generation) still load, with those fields defaulted. When
/// `expected_name` is non-empty and the image declares a different
/// non-empty name, the image is rejected with InvalidArgument: a catalog
/// that routes by filename stem must not silently serve a bundle under a
/// name its owner never published it as.
Result<HostedBundle> DeserializeBundle(
    const Bytes& image, const std::string& expected_name = std::string());

/// Header fields readable without parsing the whole image. For v2 files
/// `name` is empty and `has_generation` is false.
struct BundleHeader {
  uint32_t version = 0;
  std::string name;
  uint64_t generation = 0;
  bool has_generation = false;
};

/// Reads just the magic/version/name/generation prefix of a bundle file
/// (v3 and v4 share it byte for byte). Cheap (a few hundred bytes of
/// I/O) — used by catalog freshness probes that must not deserialize
/// whole multi-megabyte images per poll.
Result<BundleHeader> ReadBundleHeader(const std::string& path);

/// Convenience file wrappers.
Status SaveBundle(const EncryptedDatabase& database, const Metadata& metadata,
                  const std::string& path,
                  const std::string& name = std::string(),
                  uint64_t generation = 0,
                  BundleFormat format = BundleFormat::kV3);
Result<HostedBundle> LoadBundle(
    const std::string& path,
    const std::string& expected_name = std::string());

}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_SERIALIZER_H_
