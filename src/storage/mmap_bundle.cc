#include "storage/mmap_bundle.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace xcrypt {

namespace si = storage_internal;

Result<std::unique_ptr<MmapBundleReader>> MmapBundleReader::Open(
    const std::string& path, const std::string& expected_name) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("cannot stat " + path + ": " + std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < 12) {
    ::close(fd);
    return Status::Corruption(path + " is too small to be a bundle");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps the inode alive; the descriptor is not needed again
  // (and SaveBundle's atomic rename means a re-upload never mutates the
  // bytes under an open mapping — it replaces the directory entry).
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::Internal("cannot mmap " + path + ": " +
                            std::strerror(errno));
  }
  // Queries touch payload slices scattered across the file; without this
  // hint the kernel's fault-time readahead pulls in ~100-200KB around each
  // touched block and a selective query ends up faulting most of the file.
  // MADV_RANDOM disables readahead for the VMA so residency tracks the
  // bytes actually dereferenced. MADV_NOHUGEPAGE keeps the fault handler
  // from mapping whole 2MB page-cache folios (a freshly written bundle
  // sits in large folios, and one PMD mapping per touched block would
  // fault in ~100x the bytes a selective query reads). Advisory only:
  // failures are ignored.
  ::madvise(mapping, size, MADV_RANDOM);
#ifdef MADV_NOHUGEPAGE
  ::madvise(mapping, size, MADV_NOHUGEPAGE);
#endif

  std::unique_ptr<MmapBundleReader> reader(new MmapBundleReader());
  reader->path_ = path;
  reader->data_ = static_cast<const uint8_t*>(mapping);
  reader->size_ = size;

  auto layout = si::ParseV4Layout(reader->data_, reader->size_);
  if (!layout.ok()) return layout.status();  // dtor unmaps
  reader->layout_ = std::move(*layout);
  reader->name_ = reader->layout_.name;
  reader->generation_ = reader->layout_.generation;
  if (!expected_name.empty() && !reader->name_.empty() &&
      reader->name_ != expected_name) {
    return Status::InvalidArgument("bundle declares name '" + reader->name_ +
                                   "' but was opened as '" + expected_name +
                                   "'");
  }

  // The block index is the one section parsed eagerly: it is a few dozen
  // bytes per block, and validating every payload slice here makes
  // BlockPayload() unconditionally safe afterwards.
  const si::SectionEntry& payloads =
      *reader->layout_.Find(si::kBlockPayloads);
  const si::SectionEntry& index = *reader->layout_.Find(si::kBlockIndex);
  auto refs = si::ParseBlockIndex(reader->data_ + index.offset, index.length,
                                  payloads.length);
  if (!refs.ok()) return refs.status();
  reader->blocks_ = std::move(*refs);
  reader->payloads_ = reader->data_ + payloads.offset;
  for (const si::BlockRef& ref : reader->blocks_) {
    reader->ciphertext_bytes_ += static_cast<int64_t>(ref.length);
  }
  reader->resident_bytes_.store(
      static_cast<int64_t>(index.length),
      std::memory_order_relaxed);
  return reader;
}

MmapBundleReader::~MmapBundleReader() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

Status MmapBundleReader::EnsureResident() const {
  if (core_resident_.load(std::memory_order_acquire)) return Status::Ok();
  std::lock_guard<std::mutex> lock(resident_mu_);
  if (core_resident_.load(std::memory_order_relaxed)) return Status::Ok();

  // Parse into locals first: a corruption discovered halfway must leave
  // the reader unchanged, so a retry (or a differently-shaped query)
  // cannot observe a half-built metadata.
  EncryptedDatabase shell;
  Metadata meta;
  {
    const si::SectionEntry& s = *layout_.Find(si::kSkeleton);
    BinaryReader r(SectionData(s), s.length);
    auto skeleton = si::ReadDocument(r);
    if (!skeleton.ok()) return skeleton.status();
    if (!r.AtEnd()) return Status::Corruption("trailing bytes in skeleton");
    shell.skeleton = std::move(*skeleton);
  }
  const int32_t node_count = shell.skeleton.node_count();
  {
    const si::SectionEntry& s = *layout_.Find(si::kMarkers);
    XCRYPT_RETURN_NOT_OK(si::ParseMarkers(SectionData(s), s.length, node_count,
                                          &shell.marker_of_block));
  }
  {
    const si::SectionEntry& s = *layout_.Find(si::kDsi);
    XCRYPT_RETURN_NOT_OK(
        si::ParseDsi(SectionData(s), s.length, &meta.dsi_table));
  }
  {
    const si::SectionEntry& s = *layout_.Find(si::kBlockReps);
    XCRYPT_RETURN_NOT_OK(
        si::ParseBlockReps(SectionData(s), s.length, &meta.block_table));
  }
  {
    const si::SectionEntry& s = *layout_.Find(si::kPublicMap);
    XCRYPT_RETURN_NOT_OK(si::ParsePublicMap(SectionData(s), s.length,
                                            node_count,
                                            &meta.public_interval_to_node));
  }
  std::vector<si::ValueIndexRef> dir;
  {
    const si::SectionEntry& s = *layout_.Find(si::kValueIndexes);
    auto parsed = si::ParseValueIndexDirectory(SectionData(s), s.length);
    if (!parsed.ok()) return parsed.status();
    dir = std::move(*parsed);
  }

  int64_t bytes = 0;
  for (uint32_t id : {si::kSkeleton, si::kMarkers, si::kDsi, si::kBlockReps,
                      si::kPublicMap}) {
    bytes += static_cast<int64_t>(layout_.Find(id)->length);
  }
  shell_ = std::move(shell);
  meta_ = std::move(meta);
  vi_dir_ = std::move(dir);
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  core_resident_.store(true, std::memory_order_release);
  return Status::Ok();
}

const BPlusTree* MmapBundleReader::ValueIndex(const std::string& token) const {
  if (!core_resident_.load(std::memory_order_acquire)) return nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(vi_mu_);
    auto it = trees_.find(token);
    if (it != trees_.end()) return &it->second;
  }
  const si::ValueIndexRef* ref = nullptr;
  for (const si::ValueIndexRef& candidate : vi_dir_) {
    if (candidate.token == token) {
      ref = &candidate;
      break;
    }
  }
  if (ref == nullptr) return nullptr;

  // Parse outside the lock (the directory pre-validated the entry array,
  // so this cannot fail); racing parses are idempotent, first insert wins.
  const si::SectionEntry& s = *layout_.Find(si::kValueIndexes);
  BPlusTree tree;
  tree.BulkLoad(si::ParseValueIndexEntries(SectionData(s), *ref));
  std::unique_lock<std::shared_mutex> lock(vi_mu_);
  auto [it, inserted] = trees_.try_emplace(token, std::move(tree));
  if (inserted) {
    resident_bytes_.fetch_add(
        static_cast<int64_t>(ref->count) * 12 +
            static_cast<int64_t>(token.size()),
        std::memory_order_relaxed);
  }
  return &it->second;
}

Result<HostedBundle> MmapBundleReader::Materialize() const {
  Bytes image(data_, data_ + size_);
  auto bundle = DeserializeBundle(image);
  if (!bundle.ok()) return bundle.status();
  return bundle;
}

}  // namespace xcrypt
