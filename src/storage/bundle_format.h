#ifndef XCRYPT_STORAGE_BUNDLE_FORMAT_H_
#define XCRYPT_STORAGE_BUNDLE_FORMAT_H_

// Internals of the bundle image formats, shared by the eager serializer
// (storage/serializer.cc) and the mmap reader (storage/mmap_bundle.cc).
// Not part of the public storage API.
//
// Format v4 ("mmap-friendly") layout:
//
//   magic u32 | version u32 | name str | generation u64
//   section_count u32
//   section_count x { id u32 | reserved u32 | offset u64 | length u64 }
//   ...section bodies at their recorded absolute offsets...
//
// Section bodies are little-endian with fixed-width records wherever the
// reader wants random access:
//
//   kSkeleton       v3 document encoding (count + variable-width nodes)
//   kBlockIndex     count u32, count x {id i32, gen u32, off u64, len u64}
//                   (off/len into kBlockPayloads, relative to its start)
//   kBlockPayloads  raw concatenated ciphertext — never parsed, only
//                   sliced; the demand-paged bulk of the image
//   kMarkers        count u32, count x i32
//   kDsi            token_count u32, per token: str + n u32 + n x 16B
//   kBlockReps      count u32, count x {id i32, min f64, max f64}
//   kValueIndexes   index_count u32, per index: {token str, off u64,
//                   count u32}; entry arrays of count x {key i64,
//                   block i32} at off (relative to section start)
//   kPublicMap      count u32, count x {min f64, max f64, node i32}

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "index/btree.h"
#include "index/dsi_table.h"
#include "xml/document.h"

namespace xcrypt {
namespace storage_internal {

constexpr uint32_t kBundleMagic = 0x58435231;  // "XCR1"
constexpr uint32_t kFormatV2 = 2;
constexpr uint32_t kFormatV3 = 3;
constexpr uint32_t kFormatV4 = 4;

enum SectionId : uint32_t {
  kSkeleton = 1,
  kBlockIndex = 2,
  kBlockPayloads = 3,
  kMarkers = 4,
  kDsi = 5,
  kBlockReps = 6,
  kValueIndexes = 7,
  kPublicMap = 8,
};

struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;  ///< absolute byte offset into the image
  uint64_t length = 0;
};

/// Parsed v4 prologue: identity plus the validated section table. Every
/// section is bounds-checked against the image size, required sections
/// are present exactly once, and no two sections overlap — after
/// ParseV4Layout succeeds, slicing any section is safe without further
/// checks.
struct V4Layout {
  std::string name;
  uint64_t generation = 0;
  std::vector<SectionEntry> sections;

  const SectionEntry* Find(uint32_t id) const;
};

Result<V4Layout> ParseV4Layout(const uint8_t* data, size_t size);

/// Document encoding shared by every format version.
void WriteDocument(BinaryWriter& w, const Document& doc);
Result<Document> ReadDocument(BinaryReader& r);

void WriteInterval(BinaryWriter& w, const Interval& iv);
Interval ReadInterval(BinaryReader& r);

/// One kBlockIndex record, fully validated against the payload section
/// length: offset + length never reaches past the payloads.
struct BlockRef {
  int32_t id = 0;
  uint32_t generation = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

Result<std::vector<BlockRef>> ParseBlockIndex(const uint8_t* data, size_t size,
                                              uint64_t payloads_length);

Status ParseMarkers(const uint8_t* data, size_t size, int32_t node_count,
                    std::vector<NodeId>* out);
Status ParseDsi(const uint8_t* data, size_t size, DsiTable* out);
Status ParseBlockReps(const uint8_t* data, size_t size, BlockTable* out);
Status ParsePublicMap(const uint8_t* data, size_t size, int32_t node_count,
                      std::map<Interval, NodeId>* out);

/// One kValueIndexes directory row. After ParseValueIndexDirectory
/// succeeds, the entry array of every row lies inside the section, so
/// ParseValueIndexEntries cannot fail.
struct ValueIndexRef {
  std::string token;
  uint64_t offset = 0;  ///< relative to the section start
  uint32_t count = 0;
};

Result<std::vector<ValueIndexRef>> ParseValueIndexDirectory(
    const uint8_t* data, size_t size);
std::vector<BTreeEntry> ParseValueIndexEntries(const uint8_t* section_data,
                                               const ValueIndexRef& ref);

}  // namespace storage_internal
}  // namespace xcrypt

#endif  // XCRYPT_STORAGE_BUNDLE_FORMAT_H_
