#ifndef XCRYPT_DAS_DAS_SYSTEM_H_
#define XCRYPT_DAS_DAS_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/client.h"
#include "core/server.h"
#include "net/remote_engine.h"

namespace xcrypt {

/// Per-query cost breakdown, mirroring the parameters measured in §7.2:
/// query translation time on the client, query processing time on the
/// server, transmission time of the answer, decryption time on the client,
/// and query post-processing time on the client.
struct QueryCosts {
  double client_translate_us = 0.0;
  double server_process_us = 0.0;
  /// Wire time. In-process this is simulated from bytes_shipped over the
  /// configured link; when the system is connected to a remote server it
  /// is real measured wall time (round trip minus the server-reported
  /// processing time), flagged by `transmission_measured`.
  double transmission_us = 0.0;
  bool transmission_measured = false;
  double decrypt_us = 0.0;
  double postprocess_us = 0.0;
  int64_t bytes_shipped = 0;
  int blocks_shipped = 0;

  double TotalUs() const {
    return client_translate_us + server_process_us + transmission_us +
           decrypt_us + postprocess_us;
  }
  /// The client-side share (everything but server processing and the wire).
  double ClientUs() const {
    return client_translate_us + decrypt_us + postprocess_us;
  }
};

/// One executed query: its answer plus the measured costs.
struct QueryRun {
  QueryAnswer answer;
  QueryCosts costs;
  TranslatedQuery translated;
};

/// One executed aggregate query.
struct AggregateRun {
  AggregateAnswer answer;
  QueryCosts costs;
};

/// Host-time statistics (reported by experiment E4).
struct HostReport {
  double encrypt_us = 0.0;
  double metadata_us = 0.0;
  int64_t ciphertext_bytes = 0;
  int64_t skeleton_bytes = 0;
  int64_t metadata_bytes = 0;
  int num_blocks = 0;
  int64_t scheme_size_nodes = 0;
};

/// The complete hosted system of Figure 1: the client (data owner, keys,
/// translation, post-processing) wired to the untrusted server engine, with
/// a cost model for the link between them.
class DasSystem {
 public:
  struct Options {
    Options() {}
    double link_mbps = 100.0;  ///< the paper's experimental setup (§7.1)
  };

  /// Encrypts and hosts `doc` under `kind`, building all metadata.
  static Result<DasSystem> Host(Document doc,
                                std::vector<SecurityConstraint> constraints,
                                SchemeKind kind,
                                const std::string& master_secret,
                                const Options& options = Options());

  /// Runs the full 5-step protocol of §6 for one query.
  Result<QueryRun> Execute(const PathExpr& query) const;
  Result<QueryRun> Execute(const std::string& xpath) const;

  /// The naive method of §7.3: ship the entire encrypted database and
  /// evaluate at the client.
  Result<QueryRun> ExecuteNaive(const PathExpr& query) const;

  /// Aggregate evaluation (§6.4): MIN/MAX over encrypted values decrypt a
  /// single block; COUNT/SUM fall back to shipping the bound blocks;
  /// aggregates over public values never leave the server.
  Result<AggregateRun> ExecuteAggregate(const PathExpr& path,
                                        AggregateKind kind) const;
  Result<AggregateRun> ExecuteAggregate(const std::string& xpath,
                                        AggregateKind kind) const;

  // --- Remote service (Figure 1 over an actual wire) -------------------

  /// Routes all subsequent queries through an xcrypt_serve endpoint
  /// hosting this system's bundle (see storage/serializer.h) instead of
  /// the in-process engine. Query costs then report measured transmission
  /// time. Fails (leaving the in-process path active) when the endpoint
  /// is unreachable or speaks the wrong protocol version.
  Status ConnectRemote(const std::string& host, uint16_t port,
                       const net::RemoteOptions& options =
                           net::RemoteOptions());

  /// Returns to in-process evaluation.
  void DisconnectRemote() { remote_.reset(); }
  bool remote_attached() const { return remote_ != nullptr; }

  // --- Updates (future-work item (3); see Client) ----------------------

  /// Structure-preserving value update; incremental on the server side.
  Result<int> UpdateValues(const std::string& xpath, const std::string& value);
  /// Structural insert/delete; re-hosts and refreshes the server state.
  Status InsertSubtree(const std::string& parent_xpath,
                       const Document& fragment);
  Result<int> DeleteSubtrees(const std::string& xpath);

  const Client& client() const { return *client_; }
  const HostReport& host_report() const { return host_report_; }

 private:
  DasSystem() = default;

  Result<QueryRun> Finish(const PathExpr& query, ServerResponse response,
                          QueryCosts costs, TranslatedQuery translated) const;

  /// The active evaluator: the remote stub when attached, else the
  /// in-process engine.
  const QueryEngine& engine() const {
    return remote_ ? static_cast<const QueryEngine&>(*remote_) : *server_;
  }

  /// Attributes the wall time of one engine call to the server and wire
  /// phases: remote calls use the measured split, in-process calls are
  /// pure server time (the wire is simulated later from bytes shipped).
  void ApplyEngineTiming(double engine_wall_us, QueryCosts* costs) const;

  std::unique_ptr<Client> client_;
  std::unique_ptr<ServerEngine> server_;
  std::unique_ptr<net::RemoteServerEngine> remote_;
  Options options_;
  HostReport host_report_;
};

}  // namespace xcrypt

#endif  // XCRYPT_DAS_DAS_SYSTEM_H_
