#ifndef XCRYPT_DAS_DAS_SYSTEM_H_
#define XCRYPT_DAS_DAS_SYSTEM_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/client.h"
#include "core/server.h"
#include "das/client_tuning.h"
#include "net/remote_engine.h"
#include "privacy/fetcher.h"
#include "privacy/shape.h"
#include "storage/serializer.h"
#include "storage/update/delta_builder.h"
#include "xpath/ast.h"

namespace xcrypt {

/// Fixed-bandwidth cost model for the client↔server link, used when no
/// real wire exists (§7.1's 100 Mbps experimental setup).
struct SimulatedLink {
  double mbps = 100.0;

  /// Wire time for `bytes` over the link, in microseconds.
  double EstimateUs(int64_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / (mbps * 1e6) * 1e6;
  }
};

/// Per-query cost breakdown, mirroring the parameters measured in §7.2:
/// query translation time on the client, query processing time on the
/// server, transmission time of the answer, decryption time on the client,
/// and query post-processing time on the client.
struct QueryCosts {
  /// Where the transmission figure came from. Simulated and measured wire
  /// times are different quantities (a model vs a wall clock); tagging the
  /// source keeps TotalUs from silently mixing them across runs.
  enum class TransmissionSource {
    kSimulated,  ///< bytes_shipped over the configured SimulatedLink
    kMeasured,   ///< measured round trip minus server-reported processing
  };

  double client_translate_us = 0.0;
  double server_process_us = 0.0;
  /// Wire time, per `transmission_source`: in-process it is simulated from
  /// bytes_shipped over the configured link; connected to a remote server
  /// it is real measured wall time.
  double transmission_us = 0.0;
  TransmissionSource transmission_source = TransmissionSource::kSimulated;
  double decrypt_us = 0.0;
  double postprocess_us = 0.0;
  int64_t bytes_shipped = 0;
  int blocks_shipped = 0;

  bool transmission_measured() const {
    return transmission_source == TransmissionSource::kMeasured;
  }

  double TotalUs() const {
    return client_translate_us + server_process_us + transmission_us +
           decrypt_us + postprocess_us;
  }
  /// The client-side share (everything but server processing and the wire).
  double ClientUs() const {
    return client_translate_us + decrypt_us + postprocess_us;
  }
};

/// Projects a trace produced by DasSystem::Execute onto the §7.2 cost
/// breakdown — the same decomposition QueryRun::costs reports from
/// stopwatches, read instead from the span forest ("translate", "server",
/// "transmit", "decrypt", "splice" + "postprocess"). Wire byte/block
/// counters are not time and stay 0.
QueryCosts CostsFromTrace(const obs::Trace& trace);

/// One executed query: its answer plus the measured costs.
struct QueryRun {
  QueryAnswer answer;
  QueryCosts costs;
  TranslatedQuery translated;
  /// The raw engine-call measurements behind `costs` (server phase
  /// decomposition; wire facts when the call went over TCP).
  EngineCallStats engine_stats;
};

/// One executed aggregate query.
struct AggregateRun {
  AggregateAnswer answer;
  QueryCosts costs;
  EngineCallStats engine_stats;
};

/// Host-time statistics (reported by experiment E4).
struct HostReport {
  double encrypt_us = 0.0;
  double metadata_us = 0.0;
  int64_t ciphertext_bytes = 0;
  int64_t skeleton_bytes = 0;
  int64_t metadata_bytes = 0;
  int num_blocks = 0;
  int64_t scheme_size_nodes = 0;
};

/// The complete hosted system of Figure 1: the client (data owner, keys,
/// translation, post-processing) wired to the untrusted server engine, with
/// a cost model for the link between them.
class DasSystem {
 public:
  /// Encrypts and hosts `doc` under `kind`, building all metadata.
  /// `tuning` (see ClientTuning) carries every client-side knob — link
  /// model, cache budget, thread/kernel picks, retry policy, privacy mode
  /// — validated up front; it is fixed for the system's lifetime.
  static Result<DasSystem> Host(Document doc,
                                std::vector<SecurityConstraint> constraints,
                                SchemeKind kind,
                                const std::string& master_secret,
                                const ClientTuning& tuning = ClientTuning());

  /// Runs the full 5-step protocol of §6 for one query. Every entry
  /// point takes the query as either a parsed PathExpr or an XPath
  /// string — one templated surface forwards both spellings through
  /// ResolveQuery, so the two stay symmetric by construction. An
  /// optional context carries a trace (spanning every phase of the run,
  /// client and server alike) and a deadline the engine respects.
  template <typename Query>
  Result<QueryRun> Execute(const Query& query,
                           obs::QueryContext* ctx = nullptr) const {
    auto path = ResolveQuery(query);
    if (!path.ok()) return path.status();
    return ExecutePath(*path, ctx);
  }

  /// The naive method of §7.3: ship the entire encrypted database and
  /// evaluate at the client.
  template <typename Query>
  Result<QueryRun> ExecuteNaive(const Query& query,
                                obs::QueryContext* ctx = nullptr) const {
    auto path = ResolveQuery(query);
    if (!path.ok()) return path.status();
    return ExecuteNaivePath(*path, ctx);
  }

  /// Aggregate evaluation (§6.4): MIN/MAX over encrypted values decrypt a
  /// single block; COUNT/SUM fall back to shipping the bound blocks;
  /// aggregates over public values never leave the server.
  template <typename Query>
  Result<AggregateRun> ExecuteAggregate(const Query& query,
                                        AggregateKind kind,
                                        obs::QueryContext* ctx = nullptr)
      const {
    auto path = ResolveQuery(query);
    if (!path.ok()) return path.status();
    return ExecuteAggregatePath(*path, kind, ctx);
  }

  // --- Remote service (Figure 1 over an actual wire) -------------------

  /// Handle over this system's remote attachment. Obtained via Remote();
  /// groups connect/disconnect/inspection behind one small surface
  /// instead of three loose methods on DasSystem.
  class RemoteHandle {
   public:
    /// Routes all subsequent queries through an xcrypt_serve endpoint
    /// hosting this system's bundle (see storage/serializer.h) instead
    /// of the in-process engine; `database` selects one of a catalog
    /// daemon's databases ("" = its default). Query costs then report
    /// measured transmission time. Fails (leaving the in-process path
    /// active) when the endpoint is unreachable or speaks the wrong
    /// protocol version. When `options` is absent, the connection derives
    /// its RemoteOptions from the system's ClientTuning (retry policy);
    /// passing explicit options overrides the tuning wholesale.
    Status Connect(const std::string& host, uint16_t port,
                   const std::string& database = std::string(),
                   std::optional<net::RemoteOptions> options = std::nullopt);

    /// Returns to in-process evaluation.
    void Disconnect();
    bool attached() const { return das_->remote_ != nullptr; }

    /// The connected session's target database ("" when detached or
    /// using the daemon's default).
    const std::string& database() const;

    /// Daemon-side counters for the connected endpoint.
    Result<net::NetStats> Stats() const;

   private:
    friend class DasSystem;
    explicit RemoteHandle(DasSystem* das) : das_(das) {}
    DasSystem* das_;
  };

  RemoteHandle Remote() { return RemoteHandle(this); }

  // --- Updates (future-work item (3); see Client) ----------------------
  //
  // All three edit kinds are incremental: the client re-encrypts only the
  // touched blocks and patches the indexes in place. When a remote daemon
  // is attached the side effects are recorded (DeltaBuilder), shipped as
  // a delta bundle over wire v5, and applied server-side in place —
  // pinned readers keep the old resident, new queries see the new one,
  // and connected clients get invalidation pushes for the stale blocks.

  /// Structure-preserving value update.
  Result<int> UpdateValues(const std::string& xpath, const std::string& value);
  /// Structural insert under every node matched by `parent_xpath`.
  Status InsertSubtree(const std::string& parent_xpath,
                       const Document& fragment);
  Result<int> DeleteSubtrees(const std::string& xpath);

  /// A hosted bundle of the current state, stamped `name` and the current
  /// bundle generation — what gets uploaded to (or re-checkpointed at) a
  /// daemon. Deltas built after this export use it as their base.
  Result<HostedBundle> ExportBundle(
      const std::string& name = std::string()) const;

  /// Owner-assigned generation of the hosted state: 1 at Host, +1 per
  /// applied update batch (delta pushes carry it across the wire).
  uint64_t bundle_generation() const { return bundle_generation_; }

  const Client& client() const { return *client_; }
  const HostReport& host_report() const { return host_report_; }
  const ClientTuning& tuning() const { return tuning_; }

  // --- Access-pattern protection (DESIGN.md §17) ------------------------

  /// Entries currently in the local query-shape log (the decoy sampling
  /// distribution). Grows as real queries run with decoys enabled.
  size_t shape_log_size() const;

  /// Persists the shape log to tuning().shape_log_path now (a periodic
  /// save also happens every few dozen recorded queries). No-op Ok when
  /// no path is configured.
  Status SaveShapeLog() const;

  /// The remote PIR fetcher, or nullptr when detached / PIR disabled.
  /// Exposes fetch counters for tests and experiments.
  const privacy::SectionFetcher* section_fetcher() const {
    return privacy_ == nullptr ? nullptr : privacy_->fetcher.get();
  }

 private:
  DasSystem() = default;

  /// Normalizes the two query spellings behind the templated entry
  /// points: a PathExpr passes through, a string parses.
  static Result<PathExpr> ResolveQuery(const PathExpr& query);
  static Result<PathExpr> ResolveQuery(const std::string& xpath);
  static Result<PathExpr> ResolveQuery(const char* xpath);

  Result<QueryRun> ExecutePath(const PathExpr& query,
                               obs::QueryContext* ctx) const;
  Result<QueryRun> ExecuteNaivePath(const PathExpr& query,
                                    obs::QueryContext* ctx) const;
  Result<AggregateRun> ExecuteAggregatePath(const PathExpr& path,
                                            AggregateKind kind,
                                            obs::QueryContext* ctx) const;

  Result<QueryRun> Finish(const PathExpr& query, EngineQueryResult engine_run,
                          QueryCosts costs, TranslatedQuery translated,
                          obs::QueryContext* ctx,
                          const CachedBlockSet* cache_set = nullptr) const;

  /// The active evaluator: the remote stub when attached, else the
  /// in-process engine.
  const QueryEngine& engine() const {
    return remote_ ? static_cast<const QueryEngine&>(*remote_) : *server_;
  }

  /// The simulated-link cost model for the configured bandwidth.
  SimulatedLink link() const { return SimulatedLink{tuning_.link_mbps}; }

  /// Attributes one engine call's measurements to the server and wire
  /// phases: remote calls use the measured split, in-process calls are
  /// pure server time (the wire is simulated later from bytes shipped).
  void ApplyEngineTiming(const EngineCallStats& stats,
                         QueryCosts* costs) const;

  /// Finishes one recorded update batch: refreshes the in-process engine,
  /// advances the bundle generation, and (when remote) ships the delta.
  Status PropagateUpdate(const DeltaBuilder& builder);

  /// Everything behind the privacy mode, grouped so DasSystem stays
  /// movable (a mutex member would pin it): the shape log decoys sample
  /// from, the jitter source, and the remote PIR fetcher. One mutex
  /// serializes all of it — neither ShapeLog nor SectionFetcher is
  /// thread-safe on its own.
  struct PrivacyState {
    std::mutex mu;
    privacy::ShapeLog shape_log;
    Rng rng;
    uint64_t records_since_save = 0;
    std::unique_ptr<privacy::SectionFetcher> fetcher;
  };

  /// Samples up to `decoys` cover queries and then records `real` into
  /// the shape log (in that order: a query never covers for itself on its
  /// first appearance), persisting the log periodically.
  std::vector<TranslatedQuery> SampleCoversAndRecord(
      const TranslatedQuery& real, int decoys) const;

  /// Spot-checks one shipped block's metadata through the PIR fetcher
  /// (block-meta section): a generation-matched record whose size
  /// disagrees with the shipped ciphertext is server inconsistency.
  Status PirSpotCheck(const ServerResponse& response,
                      obs::Trace* trace) const;

  /// client_ precedes remote_: the remote stub's invalidation sink points
  /// into the client's block cache and must die first. privacy_ follows
  /// remote_ so the fetcher (which holds the stub as its transport) is
  /// destroyed before the stub.
  std::unique_ptr<Client> client_;
  std::unique_ptr<ServerEngine> server_;
  std::unique_ptr<net::RemoteServerEngine> remote_;
  std::unique_ptr<PrivacyState> privacy_;
  ClientTuning tuning_;
  HostReport host_report_;
  uint64_t bundle_generation_ = 1;
};

}  // namespace xcrypt

#endif  // XCRYPT_DAS_DAS_SYSTEM_H_
