#ifndef XCRYPT_DAS_CLIENT_TUNING_H_
#define XCRYPT_DAS_CLIENT_TUNING_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/remote_engine.h"
#include "privacy/options.h"

namespace xcrypt {

/// Every client-side knob of a hosted system, in one value. Replaces the
/// previous spread of DasSystem::Options fields, XCRYPT_THREADS /
/// XCRYPT_CRYPTO_KERNEL environment overrides, and per-Connect retry
/// arguments: a DasSystem is configured exactly once, at Host(), and the
/// configuration is inspectable and validatable as a whole. Environment
/// variables no longer override anything — what the struct says is what
/// runs.
struct ClientTuning {
  ClientTuning() {}

  /// Simulated link bandwidth for in-process cost reporting (§7.1's
  /// 100 Mbps experimental setup). Irrelevant once a remote endpoint is
  /// attached (transmission is then measured, not modeled).
  double link_mbps = 100.0;

  /// Budget of the client's decrypted-block cache (wire v3): repeated
  /// queries advertise cached blocks so the server ships id-only stubs.
  /// 0 disables the cache (every query cold). Bounded in ciphertext
  /// bytes.
  int64_t block_cache_bytes = 8 << 20;

  /// Worker threads of the process-wide shared pool (crypto, parallel
  /// joins). 0 = size from the hardware. Takes effect only if the shared
  /// pool has not been constructed yet — Host() applies it first thing.
  int threads = 0;

  /// Crypto kernel override: "scalar", "aesni", or "" for the fastest one
  /// this CPU supports. Unknown names fail Validate() up front instead of
  /// silently running the fallback.
  std::string crypto_kernel;

  /// Retry discipline for the remote stub (applied by Remote().Connect()
  /// unless the call supplies explicit RemoteOptions).
  net::RetryPolicy retry;

  /// Access-pattern protection (DESIGN.md §17): decoy batching, response
  /// padding, PIR-style hot-section fetch. Off by default.
  PrivacyOptions privacy;

  /// Where the query-shape log (decoy sampling distribution) persists
  /// across sessions. "" keeps the log in memory only. The file never
  /// leaves the client machine.
  std::string shape_log_path;

  /// Seed for the client's privacy randomness (decoy sampling, LWE
  /// secrets' jitter source). 0 = a fixed default; set it to make decoy
  /// choices reproducible in tests.
  uint64_t privacy_seed = 0;

  /// Rejects nonsensical settings; Host() refuses a bad config before
  /// doing any work.
  Status Validate() const;
};

}  // namespace xcrypt

#endif  // XCRYPT_DAS_CLIENT_TUNING_H_
