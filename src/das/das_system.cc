#include "das/das_system.h"

#include <algorithm>

#include "common/timer.h"
#include "xpath/parser.h"

namespace xcrypt {

Result<DasSystem> DasSystem::Host(Document doc,
                                  std::vector<SecurityConstraint> constraints,
                                  SchemeKind kind,
                                  const std::string& master_secret,
                                  const Options& options) {
  DasSystem das;
  das.options_ = options;
  auto client = Client::Host(std::move(doc), std::move(constraints), kind,
                             master_secret);
  if (!client.ok()) return client.status();
  das.client_ = std::make_unique<Client>(std::move(*client));
  das.server_ = std::make_unique<ServerEngine>(&das.client_->database(),
                                               &das.client_->metadata());

  HostReport& report = das.host_report_;
  report.encrypt_us = das.client_->encrypt_micros();
  report.metadata_us = das.client_->metadata_micros();
  report.ciphertext_bytes = das.client_->database().TotalCiphertextBytes();
  report.skeleton_bytes =
      das.client_->database().skeleton.empty()
          ? 0
          : das.client_->database().skeleton.SubtreeByteSize(
                das.client_->database().skeleton.root());
  report.metadata_bytes = das.client_->metadata().ByteSize();
  report.num_blocks = static_cast<int>(das.client_->database().blocks.size());
  report.scheme_size_nodes =
      das.client_->scheme().SizeInNodes(das.client_->original());
  return das;
}

Status DasSystem::ConnectRemote(const std::string& host, uint16_t port,
                                const net::RemoteOptions& options) {
  auto remote = net::RemoteServerEngine::Connect(host, port, options);
  if (!remote.ok()) return remote.status();
  remote_ = std::move(*remote);
  return Status::Ok();
}

void DasSystem::ApplyEngineTiming(double engine_wall_us,
                                  QueryCosts* costs) const {
  if (const RemoteCallInfo* rc = engine().last_call()) {
    costs->server_process_us = rc->server_process_us;
    costs->transmission_us =
        std::max(0.0, rc->round_trip_us - rc->server_process_us);
    costs->transmission_measured = true;
  } else {
    costs->server_process_us = engine_wall_us;
  }
}

Result<QueryRun> DasSystem::Execute(const PathExpr& query) const {
  QueryCosts costs;
  Stopwatch watch;
  auto translated = client_->Translate(query);
  costs.client_translate_us = watch.ElapsedMicros();
  if (!translated.ok()) return translated.status();

  watch.Restart();
  auto response = engine().Execute(*translated);
  const double engine_wall_us = watch.ElapsedMicros();
  if (!response.ok()) return response.status();
  ApplyEngineTiming(engine_wall_us, &costs);

  return Finish(query, std::move(*response), costs, std::move(*translated));
}

Result<QueryRun> DasSystem::Execute(const std::string& xpath) const {
  auto query = ParseXPath(xpath);
  if (!query.ok()) return query.status();
  return Execute(*query);
}

Result<QueryRun> DasSystem::ExecuteNaive(const PathExpr& query) const {
  QueryCosts costs;
  Stopwatch watch;
  auto response = engine().ExecuteNaive();
  const double engine_wall_us = watch.ElapsedMicros();
  if (!response.ok()) return response.status();
  ApplyEngineTiming(engine_wall_us, &costs);
  return Finish(query, std::move(*response), costs, TranslatedQuery{});
}

Result<AggregateRun> DasSystem::ExecuteAggregate(const PathExpr& path,
                                                 AggregateKind kind) const {
  QueryCosts costs;
  Stopwatch watch;
  auto translated = client_->Translate(path);
  if (!translated.ok()) return translated.status();
  auto token = client_->AggregateIndexToken(path);
  if (!token.ok()) return token.status();
  costs.client_translate_us = watch.ElapsedMicros();

  watch.Restart();
  auto response = engine().ExecuteAggregate(*translated, kind, *token);
  const double engine_wall_us = watch.ElapsedMicros();
  if (!response.ok()) return response.status();
  ApplyEngineTiming(engine_wall_us, &costs);

  costs.bytes_shipped = response->payload.TotalBytes() +
                        static_cast<int64_t>(response->server_value.size());
  costs.blocks_shipped = static_cast<int>(response->payload.blocks.size());
  if (!costs.transmission_measured) {
    costs.transmission_us = static_cast<double>(costs.bytes_shipped) * 8.0 /
                            (options_.link_mbps * 1e6) * 1e6;
  }

  watch.Restart();
  double decrypt_us = 0.0;
  auto answer = client_->FinishAggregate(path, *response, &decrypt_us);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  AggregateRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  return run;
}

Result<AggregateRun> DasSystem::ExecuteAggregate(const std::string& xpath,
                                                 AggregateKind kind) const {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  return ExecuteAggregate(*path, kind);
}

namespace {
/// Updates mutate the hosted bundle in place; a remote daemon serves an
/// immutable snapshot of it, so applying them locally would silently
/// desynchronize the two copies. Re-host (SaveBundle + restart the
/// daemon) after updating, or disconnect first.
Status RejectUpdateWhileRemote(bool remote_attached) {
  if (remote_attached) {
    return Status::Unsupported(
        "updates are not propagated to a connected remote server; "
        "DisconnectRemote() first");
  }
  return Status::Ok();
}
}  // namespace

Result<int> DasSystem::UpdateValues(const std::string& xpath,
                                    const std::string& value) {
  XCRYPT_RETURN_NOT_OK(RejectUpdateWhileRemote(remote_attached()));
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  auto updated = client_->UpdateValues(*path, value);
  if (!updated.ok()) return updated.status();
  // The value indexes changed in place; rebuild the engine so its caches
  // (interval universe) are refreshed.
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  return updated;
}

Status DasSystem::InsertSubtree(const std::string& parent_xpath,
                                const Document& fragment) {
  XCRYPT_RETURN_NOT_OK(RejectUpdateWhileRemote(remote_attached()));
  auto path = ParseXPath(parent_xpath);
  if (!path.ok()) return path.status();
  XCRYPT_RETURN_NOT_OK(client_->InsertSubtree(*path, fragment));
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  return Status::Ok();
}

Result<int> DasSystem::DeleteSubtrees(const std::string& xpath) {
  XCRYPT_RETURN_NOT_OK(RejectUpdateWhileRemote(remote_attached()));
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  auto removed = client_->DeleteSubtrees(*path);
  if (!removed.ok()) return removed.status();
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  return removed;
}

Result<QueryRun> DasSystem::Finish(const PathExpr& query,
                                   ServerResponse response, QueryCosts costs,
                                   TranslatedQuery translated) const {
  costs.bytes_shipped = response.TotalBytes();
  costs.blocks_shipped = static_cast<int>(response.blocks.size());
  if (!costs.transmission_measured) {
    costs.transmission_us = static_cast<double>(costs.bytes_shipped) * 8.0 /
                            (options_.link_mbps * 1e6) * 1e6;
  }

  Stopwatch watch;
  double decrypt_us = 0.0;
  auto answer = client_->PostProcess(query, response, &decrypt_us);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  QueryRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  run.translated = std::move(translated);
  return run;
}

}  // namespace xcrypt
