#include "das/das_system.h"

#include "common/timer.h"
#include "xpath/parser.h"

namespace xcrypt {

Result<DasSystem> DasSystem::Host(Document doc,
                                  std::vector<SecurityConstraint> constraints,
                                  SchemeKind kind,
                                  const std::string& master_secret,
                                  const Options& options) {
  DasSystem das;
  das.options_ = options;
  auto client = Client::Host(std::move(doc), std::move(constraints), kind,
                             master_secret);
  if (!client.ok()) return client.status();
  das.client_ = std::make_unique<Client>(std::move(*client));
  das.server_ = std::make_unique<ServerEngine>(&das.client_->database(),
                                               &das.client_->metadata());

  HostReport& report = das.host_report_;
  report.encrypt_us = das.client_->encrypt_micros();
  report.metadata_us = das.client_->metadata_micros();
  report.ciphertext_bytes = das.client_->database().TotalCiphertextBytes();
  report.skeleton_bytes =
      das.client_->database().skeleton.empty()
          ? 0
          : das.client_->database().skeleton.SubtreeByteSize(
                das.client_->database().skeleton.root());
  report.metadata_bytes = das.client_->metadata().ByteSize();
  report.num_blocks = static_cast<int>(das.client_->database().blocks.size());
  report.scheme_size_nodes =
      das.client_->scheme().SizeInNodes(das.client_->original());
  return das;
}

Result<QueryRun> DasSystem::Execute(const PathExpr& query) const {
  QueryCosts costs;
  Stopwatch watch;
  auto translated = client_->Translate(query);
  costs.client_translate_us = watch.ElapsedMicros();
  if (!translated.ok()) return translated.status();

  watch.Restart();
  auto response = server_->Execute(*translated);
  costs.server_process_us = watch.ElapsedMicros();
  if (!response.ok()) return response.status();

  return Finish(query, std::move(*response), costs, std::move(*translated));
}

Result<QueryRun> DasSystem::Execute(const std::string& xpath) const {
  auto query = ParseXPath(xpath);
  if (!query.ok()) return query.status();
  return Execute(*query);
}

Result<QueryRun> DasSystem::ExecuteNaive(const PathExpr& query) const {
  QueryCosts costs;
  Stopwatch watch;
  ServerResponse response = server_->ExecuteNaive();
  costs.server_process_us = watch.ElapsedMicros();
  return Finish(query, std::move(response), costs, TranslatedQuery{});
}

Result<AggregateRun> DasSystem::ExecuteAggregate(const PathExpr& path,
                                                 AggregateKind kind) const {
  QueryCosts costs;
  Stopwatch watch;
  auto translated = client_->Translate(path);
  if (!translated.ok()) return translated.status();
  auto token = client_->AggregateIndexToken(path);
  if (!token.ok()) return token.status();
  costs.client_translate_us = watch.ElapsedMicros();

  watch.Restart();
  auto response = server_->ExecuteAggregate(*translated, kind, *token);
  costs.server_process_us = watch.ElapsedMicros();
  if (!response.ok()) return response.status();

  costs.bytes_shipped = response->payload.TotalBytes() +
                        static_cast<int64_t>(response->server_value.size());
  costs.blocks_shipped = static_cast<int>(response->payload.blocks.size());
  costs.transmission_us = static_cast<double>(costs.bytes_shipped) * 8.0 /
                          (options_.link_mbps * 1e6) * 1e6;

  watch.Restart();
  double decrypt_us = 0.0;
  auto answer = client_->FinishAggregate(path, *response, &decrypt_us);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  AggregateRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  return run;
}

Result<AggregateRun> DasSystem::ExecuteAggregate(const std::string& xpath,
                                                 AggregateKind kind) const {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  return ExecuteAggregate(*path, kind);
}

Result<int> DasSystem::UpdateValues(const std::string& xpath,
                                    const std::string& value) {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  auto updated = client_->UpdateValues(*path, value);
  if (!updated.ok()) return updated.status();
  // The value indexes changed in place; rebuild the engine so its caches
  // (interval universe) are refreshed.
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  return updated;
}

Status DasSystem::InsertSubtree(const std::string& parent_xpath,
                                const Document& fragment) {
  auto path = ParseXPath(parent_xpath);
  if (!path.ok()) return path.status();
  XCRYPT_RETURN_NOT_OK(client_->InsertSubtree(*path, fragment));
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  return Status::Ok();
}

Result<int> DasSystem::DeleteSubtrees(const std::string& xpath) {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  auto removed = client_->DeleteSubtrees(*path);
  if (!removed.ok()) return removed.status();
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  return removed;
}

Result<QueryRun> DasSystem::Finish(const PathExpr& query,
                                   ServerResponse response, QueryCosts costs,
                                   TranslatedQuery translated) const {
  costs.bytes_shipped = response.TotalBytes();
  costs.blocks_shipped = static_cast<int>(response.blocks.size());
  costs.transmission_us = static_cast<double>(costs.bytes_shipped) * 8.0 /
                          (options_.link_mbps * 1e6) * 1e6;

  Stopwatch watch;
  double decrypt_us = 0.0;
  auto answer = client_->PostProcess(query, response, &decrypt_us);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  QueryRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  run.translated = std::move(translated);
  return run;
}

}  // namespace xcrypt
