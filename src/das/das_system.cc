#include "das/das_system.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "crypto/aes_kernel.h"
#include "xpath/parser.h"

namespace xcrypt {

Result<DasSystem> DasSystem::Host(Document doc,
                                  std::vector<SecurityConstraint> constraints,
                                  SchemeKind kind,
                                  const std::string& master_secret,
                                  const ClientTuning& tuning) {
  XCRYPT_RETURN_NOT_OK(tuning.Validate());
  // Process-wide picks first, before any crypto or pool work runs. Both
  // are best-effort by design: the shared pool's size is fixed once
  // constructed (SetSharedThreads reports but Host does not fail — a
  // second hosted system in one process keeps the first one's pool).
  if (tuning.threads > 0) ThreadPool::SetSharedThreads(tuning.threads);
  SetCryptoKernel(tuning.crypto_kernel);

  DasSystem das;
  das.tuning_ = tuning;
  das.privacy_ = std::make_unique<PrivacyState>();
  das.privacy_->rng =
      tuning.privacy_seed != 0 ? Rng(tuning.privacy_seed) : Rng();
  if (!tuning.shape_log_path.empty()) {
    // A missing file is a first run (empty log); a corrupt one is a real
    // error the owner should hear about rather than silently losing the
    // decoy distribution.
    auto log = privacy::ShapeLog::LoadFromFile(tuning.shape_log_path);
    if (!log.ok()) return log.status();
    das.privacy_->shape_log = std::move(*log);
  }

  auto client = Client::Host(std::move(doc), std::move(constraints), kind,
                             master_secret);
  if (!client.ok()) return client.status();
  das.client_ = std::make_unique<Client>(std::move(*client));
  das.client_->EnableBlockCache(tuning.block_cache_bytes);
  das.server_ = std::make_unique<ServerEngine>(&das.client_->database(),
                                               &das.client_->metadata());

  HostReport& report = das.host_report_;
  report.encrypt_us = das.client_->encrypt_micros();
  report.metadata_us = das.client_->metadata_micros();
  report.ciphertext_bytes = das.client_->database().TotalCiphertextBytes();
  report.skeleton_bytes =
      das.client_->database().skeleton.empty()
          ? 0
          : das.client_->database().skeleton.SubtreeByteSize(
                das.client_->database().skeleton.root());
  report.metadata_bytes = das.client_->metadata().ByteSize();
  report.num_blocks = static_cast<int>(das.client_->database().blocks.size());
  report.scheme_size_nodes =
      das.client_->scheme().SizeInNodes(das.client_->original());
  return das;
}

Status DasSystem::RemoteHandle::Connect(
    const std::string& host, uint16_t port, const std::string& database,
    std::optional<net::RemoteOptions> options) {
  net::RemoteOptions opts = options.value_or(net::RemoteOptions());
  // No explicit options: the connection inherits the system's tuned retry
  // policy, so ClientTuning is the single place retry behavior is set.
  if (!options.has_value()) opts.retry = das_->tuning_.retry;
  if (!database.empty()) opts.database = database;
  auto remote = net::RemoteServerEngine::Connect(host, port, opts);
  if (!remote.ok()) return remote.status();
  // Server-pushed invalidations (wire v5) drop stale decrypted blocks
  // from the client's cache — another owner's delta to the same database
  // must not leave this client answering from old plaintext. The sink
  // points into client_, which outlives remote_ by member order.
  (*remote)->SetInvalidationSink(
      [client = das_->client_.get()](const net::InvalidationEventMsg& event) {
        if (event.drop_all) {
          client->InvalidateAllCachedBlocks();
          return;
        }
        std::vector<int> ids;
        ids.reserve(event.blocks.size());
        for (const BlockAdvert& advert : event.blocks) {
          ids.push_back(advert.id);
        }
        client->InvalidateCachedBlocks(ids);
      });
  // Retried requests rebuild their cache advert from the LIVE cache: an
  // invalidation landing mid-backoff (via the sink above) must shrink the
  // advert before the re-send, not leave the retry promising blocks the
  // client already dropped. The refresher only ever removes entries — it
  // filters the attempt's original advert, never adds to it.
  (*remote)->SetAdvertRefresher(
      [client = das_->client_.get()](std::vector<BlockAdvert> adverts) {
        const BlockCache* cache = client->block_cache();
        std::vector<BlockAdvert> live;
        live.reserve(adverts.size());
        for (const BlockAdvert& advert : adverts) {
          if (cache != nullptr &&
              cache->Get(advert.id, advert.generation) != nullptr) {
            live.push_back(advert);
          }
        }
        return live;
      });
  das_->remote_ = std::move(*remote);
  if (das_->tuning_.privacy.pir_threshold_bytes > 0) {
    std::lock_guard<std::mutex> lock(das_->privacy_->mu);
    das_->privacy_->fetcher = std::make_unique<privacy::SectionFetcher>(
        das_->remote_.get(), das_->tuning_.privacy.pir_threshold_bytes,
        das_->tuning_.privacy_seed);
  }
  // Adopt the daemon's resident generation so the first pushed delta is
  // built against the server's actual base — the daemon may serve an
  // older image of this document, or a v2 image pinned at generation 0.
  auto stats = das_->remote_->Stats();
  if (stats.ok() && !stats->database.empty()) {
    das_->bundle_generation_ = stats->db_generation;
  }
  return Status::Ok();
}

void DasSystem::RemoteHandle::Disconnect() {
  {
    // The fetcher holds the stub as its transport; drop it first.
    std::lock_guard<std::mutex> lock(das_->privacy_->mu);
    das_->privacy_->fetcher.reset();
  }
  das_->remote_.reset();
}

const std::string& DasSystem::RemoteHandle::database() const {
  static const std::string kEmpty;
  return das_->remote_ ? das_->remote_->database() : kEmpty;
}

Result<net::NetStats> DasSystem::RemoteHandle::Stats() const {
  if (das_->remote_ == nullptr) {
    return Status::InvalidArgument("no remote endpoint attached");
  }
  return das_->remote_->Stats();
}

Result<PathExpr> DasSystem::ResolveQuery(const PathExpr& query) {
  return query;
}

Result<PathExpr> DasSystem::ResolveQuery(const std::string& xpath) {
  return ParseXPath(xpath);
}

Result<PathExpr> DasSystem::ResolveQuery(const char* xpath) {
  return ParseXPath(xpath);
}

void DasSystem::ApplyEngineTiming(const EngineCallStats& stats,
                                  QueryCosts* costs) const {
  costs->server_process_us = stats.server_process_us;
  if (stats.transport == EngineCallStats::Transport::kRemote) {
    costs->transmission_us =
        std::max(0.0, stats.round_trip_us - stats.server_process_us);
    costs->transmission_source = QueryCosts::TransmissionSource::kMeasured;
  }
}

QueryCosts CostsFromTrace(const obs::Trace& trace) {
  QueryCosts costs;
  costs.client_translate_us = trace.TotalUs("translate");
  costs.server_process_us = trace.TotalUs("server");
  costs.transmission_us = trace.TotalUs("transmit");
  costs.decrypt_us = trace.TotalUs("decrypt");
  costs.postprocess_us =
      trace.TotalUs("splice") + trace.TotalUs("postprocess");
  return costs;
}

Result<QueryRun> DasSystem::ExecutePath(const PathExpr& query,
                                        obs::QueryContext* ctx) const {
  obs::Trace* trace = obs::TraceOf(ctx);
  QueryCosts costs;
  Stopwatch watch;
  obs::Span translate(trace, "translate");
  auto translated = client_->Translate(query);
  translate.End();
  costs.client_translate_us = watch.ElapsedMicros();
  if (!translated.ok()) return translated.status();

  // Advertise cached blocks with the query; payloads stay pinned until
  // post-processing so a concurrent eviction cannot orphan a stub.
  const CachedBlockSet cache_set = client_->AdvertiseCachedBlocks(trace);
  ExecOptions exec;
  exec.ctx = ctx;
  exec.cached_blocks = cache_set.adverts;
  exec.privacy = tuning_.privacy;
  // Decoy batching (wire v7): sample covers from the local shape history,
  // then record this query into it — in that order, so a query never
  // covers for itself. Only a remote engine has a wire observer to hide
  // from; in-process the covers would be dead weight.
  std::vector<TranslatedQuery> covers;
  if (tuning_.privacy.decoys > 0 && remote_ != nullptr) {
    covers = SampleCoversAndRecord(*translated, tuning_.privacy.decoys);
    exec.cover_queries = covers;
  }
  auto result = engine().Execute(*translated, exec);
  if (!result.ok()) return result.status();
  ApplyEngineTiming(result->stats, &costs);
  XCRYPT_RETURN_NOT_OK(PirSpotCheck(result->response, trace));

  return Finish(query, std::move(*result), costs, std::move(*translated), ctx,
                &cache_set);
}

Result<QueryRun> DasSystem::ExecuteNaivePath(const PathExpr& query,
                                             obs::QueryContext* ctx) const {
  QueryCosts costs;
  ExecOptions exec;
  exec.ctx = ctx;
  auto result = engine().ExecuteNaive(exec);
  if (!result.ok()) return result.status();
  ApplyEngineTiming(result->stats, &costs);
  return Finish(query, std::move(*result), costs, TranslatedQuery{}, ctx);
}

Result<AggregateRun> DasSystem::ExecuteAggregatePath(
    const PathExpr& path, AggregateKind kind, obs::QueryContext* ctx) const {
  obs::Trace* trace = obs::TraceOf(ctx);
  QueryCosts costs;
  Stopwatch watch;
  obs::Span translate(trace, "translate");
  auto translated = client_->Translate(path);
  if (!translated.ok()) return translated.status();
  auto token = client_->AggregateIndexToken(path);
  if (!token.ok()) return token.status();
  translate.End();
  costs.client_translate_us = watch.ElapsedMicros();

  const CachedBlockSet cache_set = client_->AdvertiseCachedBlocks(trace);
  ExecOptions exec;
  exec.ctx = ctx;
  exec.cached_blocks = cache_set.adverts;
  auto result = engine().ExecuteAggregate(*translated, kind, *token, exec);
  if (!result.ok()) return result.status();
  ApplyEngineTiming(result->stats, &costs);
  const AggregateResponse& response = result->response;

  costs.bytes_shipped = response.payload.TotalBytes() +
                        static_cast<int64_t>(response.server_value.size());
  costs.blocks_shipped = static_cast<int>(response.payload.blocks.size());
  if (!costs.transmission_measured()) {
    costs.transmission_us = link().EstimateUs(costs.bytes_shipped);
    if (trace != nullptr) {
      trace->Record("transmit", costs.transmission_us, obs::Trace::kNoParent);
    }
  }

  watch.Restart();
  double decrypt_us = 0.0;
  auto answer = client_->FinishAggregate(path, response, &decrypt_us, trace,
                                         &cache_set);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  AggregateRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  run.engine_stats = std::move(result->stats);
  return run;
}

std::vector<TranslatedQuery> DasSystem::SampleCoversAndRecord(
    const TranslatedQuery& real, int decoys) const {
  PrivacyState& state = *privacy_;
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<TranslatedQuery> covers =
      state.shape_log.SampleMany(decoys, state.rng);
  state.shape_log.Record(real);
  if (!tuning_.shape_log_path.empty() && ++state.records_since_save >= 32) {
    // Best-effort periodic persistence; a failed save never fails the
    // query (the log is an optimization of cover quality, not state).
    if (state.shape_log.SaveToFile(tuning_.shape_log_path).ok()) {
      state.records_since_save = 0;
    }
  }
  return covers;
}

Status DasSystem::PirSpotCheck(const ServerResponse& response,
                               obs::Trace* trace) const {
  if (remote_ == nullptr || response.blocks.empty()) return Status::Ok();
  std::lock_guard<std::mutex> lock(privacy_->mu);
  privacy::SectionFetcher* fetcher = privacy_->fetcher.get();
  if (fetcher == nullptr) return Status::Ok();
  // Cross-check one shipped block against the server's own block-meta
  // section, fetched through the PIR path — under the threshold the
  // server cannot even see which block the client audited.
  const EncryptedBlock& block = response.blocks.front();
  if (block.id < 0) return Status::Ok();
  Stopwatch watch;
  auto record =
      fetcher->Fetch(privacy::kBlockMetaSection,
                     static_cast<uint32_t>(block.id));
  if (!record.ok()) return record.status();
  obs::MetricsRegistry::Global().GetCounter("privacy.pir_fetches")->Add(1);
  if (trace != nullptr) {
    trace->Record("pir-fetch", watch.ElapsedMicros(), obs::Trace::kNoParent);
  }
  if (record->size() < privacy::kBlockMetaRecordBytes) {
    return Status::Corruption("block-meta record truncated");
  }
  auto u32_at = [&record](size_t offset) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>((*record)[offset + i]) << (8 * i);
    }
    return v;
  };
  const uint32_t meta_generation = u32_at(0);
  const uint32_t meta_size = u32_at(4);
  // A generation mismatch is a benign race (an update landed between the
  // section build and this query); a size mismatch at the SAME generation
  // means the server's metadata disagrees with what it shipped.
  if (meta_generation == block.generation &&
      meta_size != block.ciphertext.size()) {
    return Status::Corruption("block-meta size disagrees with shipped block");
  }
  return Status::Ok();
}

size_t DasSystem::shape_log_size() const {
  std::lock_guard<std::mutex> lock(privacy_->mu);
  return privacy_->shape_log.size();
}

Status DasSystem::SaveShapeLog() const {
  if (tuning_.shape_log_path.empty()) return Status::Ok();
  std::lock_guard<std::mutex> lock(privacy_->mu);
  return privacy_->shape_log.SaveToFile(tuning_.shape_log_path);
}

Status DasSystem::PropagateUpdate(const DeltaBuilder& builder) {
  // The in-process engine always tracks the mutated bundle (its caches —
  // the interval universe — are rebuilt), whether or not queries are
  // currently routed remotely.
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  if (builder.empty()) return Status::Ok();  // no-op batch: nothing moved
  const uint64_t base = bundle_generation_;
  bundle_generation_ = base + 1;
  // Fresh engine, fresh (empty) plan cache — stamping the generation keeps
  // its cache keys aligned with what a remote daemon would compute.
  server_->SetDataGeneration(bundle_generation_);
  if (remote_ == nullptr) return Status::Ok();
  // Ship exactly this batch's side effects. PushDelta retries transient
  // failures; the daemon recognizes a replayed generation and applies the
  // delta at most once.
  const DeltaBundle delta = builder.Build(remote_->database(), base);
  auto generation = remote_->PushDelta(SerializeDelta(delta));
  if (!generation.ok()) return generation.status();
  bundle_generation_ = *generation;
  return Status::Ok();
}

Result<int> DasSystem::UpdateValues(const std::string& xpath,
                                    const std::string& value) {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  DeltaBuilder builder(client_.get());
  auto updated = builder.UpdateValues(*path, value);
  if (!updated.ok()) return updated.status();
  XCRYPT_RETURN_NOT_OK(PropagateUpdate(builder));
  return updated;
}

Status DasSystem::InsertSubtree(const std::string& parent_xpath,
                                const Document& fragment) {
  auto path = ParseXPath(parent_xpath);
  if (!path.ok()) return path.status();
  DeltaBuilder builder(client_.get());
  XCRYPT_RETURN_NOT_OK(builder.InsertSubtree(*path, fragment));
  return PropagateUpdate(builder);
}

Result<int> DasSystem::DeleteSubtrees(const std::string& xpath) {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  DeltaBuilder builder(client_.get());
  auto removed = builder.DeleteSubtrees(*path);
  if (!removed.ok()) return removed.status();
  XCRYPT_RETURN_NOT_OK(PropagateUpdate(builder));
  return removed;
}

Result<HostedBundle> DasSystem::ExportBundle(const std::string& name) const {
  // B+-trees are move-only, so the copy goes through the (lossless for
  // server-visible state) image format.
  return DeserializeBundle(SerializeBundle(client_->database(),
                                           client_->metadata(), name,
                                           bundle_generation_));
}

Result<QueryRun> DasSystem::Finish(const PathExpr& query,
                                   EngineQueryResult engine_run,
                                   QueryCosts costs, TranslatedQuery translated,
                                   obs::QueryContext* ctx,
                                   const CachedBlockSet* cache_set) const {
  obs::Trace* trace = obs::TraceOf(ctx);
  const ServerResponse& response = engine_run.response;
  costs.bytes_shipped = response.TotalBytes();
  costs.blocks_shipped = static_cast<int>(response.blocks.size());
  if (!costs.transmission_measured()) {
    costs.transmission_us = link().EstimateUs(costs.bytes_shipped);
    // The simulated wire enters the trace as a recorded interval (remote
    // engines record their measured transmission themselves).
    if (trace != nullptr) {
      trace->Record("transmit", costs.transmission_us, obs::Trace::kNoParent);
    }
  }

  Stopwatch watch;
  double decrypt_us = 0.0;
  auto answer =
      client_->PostProcess(query, response, &decrypt_us, trace, cache_set);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  QueryRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  run.translated = std::move(translated);
  run.engine_stats = std::move(engine_run.stats);
  return run;
}

}  // namespace xcrypt
