#include "das/das_system.h"

#include <algorithm>

#include "common/timer.h"
#include "xpath/parser.h"

namespace xcrypt {

Result<DasSystem> DasSystem::Host(Document doc,
                                  std::vector<SecurityConstraint> constraints,
                                  SchemeKind kind,
                                  const std::string& master_secret,
                                  const Options& options) {
  DasSystem das;
  das.options_ = options;
  auto client = Client::Host(std::move(doc), std::move(constraints), kind,
                             master_secret);
  if (!client.ok()) return client.status();
  das.client_ = std::make_unique<Client>(std::move(*client));
  das.client_->EnableBlockCache(options.block_cache_bytes);
  das.server_ = std::make_unique<ServerEngine>(&das.client_->database(),
                                               &das.client_->metadata());

  HostReport& report = das.host_report_;
  report.encrypt_us = das.client_->encrypt_micros();
  report.metadata_us = das.client_->metadata_micros();
  report.ciphertext_bytes = das.client_->database().TotalCiphertextBytes();
  report.skeleton_bytes =
      das.client_->database().skeleton.empty()
          ? 0
          : das.client_->database().skeleton.SubtreeByteSize(
                das.client_->database().skeleton.root());
  report.metadata_bytes = das.client_->metadata().ByteSize();
  report.num_blocks = static_cast<int>(das.client_->database().blocks.size());
  report.scheme_size_nodes =
      das.client_->scheme().SizeInNodes(das.client_->original());
  return das;
}

Status DasSystem::RemoteHandle::Connect(const std::string& host, uint16_t port,
                                        const std::string& database,
                                        net::RemoteOptions options) {
  if (!database.empty()) options.database = database;
  auto remote = net::RemoteServerEngine::Connect(host, port, options);
  if (!remote.ok()) return remote.status();
  // Server-pushed invalidations (wire v5) drop stale decrypted blocks
  // from the client's cache — another owner's delta to the same database
  // must not leave this client answering from old plaintext. The sink
  // points into client_, which outlives remote_ by member order.
  (*remote)->SetInvalidationSink(
      [client = das_->client_.get()](const net::InvalidationEventMsg& event) {
        if (event.drop_all) {
          client->InvalidateAllCachedBlocks();
          return;
        }
        std::vector<int> ids;
        ids.reserve(event.blocks.size());
        for (const BlockAdvert& advert : event.blocks) {
          ids.push_back(advert.id);
        }
        client->InvalidateCachedBlocks(ids);
      });
  das_->remote_ = std::move(*remote);
  // Adopt the daemon's resident generation so the first pushed delta is
  // built against the server's actual base — the daemon may serve an
  // older image of this document, or a v2 image pinned at generation 0.
  auto stats = das_->remote_->Stats();
  if (stats.ok() && !stats->database.empty()) {
    das_->bundle_generation_ = stats->db_generation;
  }
  return Status::Ok();
}

const std::string& DasSystem::RemoteHandle::database() const {
  static const std::string kEmpty;
  return das_->remote_ ? das_->remote_->database() : kEmpty;
}

Result<net::NetStats> DasSystem::RemoteHandle::Stats() const {
  if (das_->remote_ == nullptr) {
    return Status::InvalidArgument("no remote endpoint attached");
  }
  return das_->remote_->Stats();
}

Result<PathExpr> DasSystem::ResolveQuery(const PathExpr& query) {
  return query;
}

Result<PathExpr> DasSystem::ResolveQuery(const std::string& xpath) {
  return ParseXPath(xpath);
}

Result<PathExpr> DasSystem::ResolveQuery(const char* xpath) {
  return ParseXPath(xpath);
}

void DasSystem::ApplyEngineTiming(const EngineCallStats& stats,
                                  QueryCosts* costs) const {
  costs->server_process_us = stats.server_process_us;
  if (stats.transport == EngineCallStats::Transport::kRemote) {
    costs->transmission_us =
        std::max(0.0, stats.round_trip_us - stats.server_process_us);
    costs->transmission_source = QueryCosts::TransmissionSource::kMeasured;
  }
}

QueryCosts CostsFromTrace(const obs::Trace& trace) {
  QueryCosts costs;
  costs.client_translate_us = trace.TotalUs("translate");
  costs.server_process_us = trace.TotalUs("server");
  costs.transmission_us = trace.TotalUs("transmit");
  costs.decrypt_us = trace.TotalUs("decrypt");
  costs.postprocess_us =
      trace.TotalUs("splice") + trace.TotalUs("postprocess");
  return costs;
}

Result<QueryRun> DasSystem::ExecutePath(const PathExpr& query,
                                        obs::QueryContext* ctx) const {
  obs::Trace* trace = obs::TraceOf(ctx);
  QueryCosts costs;
  Stopwatch watch;
  obs::Span translate(trace, "translate");
  auto translated = client_->Translate(query);
  translate.End();
  costs.client_translate_us = watch.ElapsedMicros();
  if (!translated.ok()) return translated.status();

  // Advertise cached blocks with the query; payloads stay pinned until
  // post-processing so a concurrent eviction cannot orphan a stub.
  const CachedBlockSet cache_set = client_->AdvertiseCachedBlocks(trace);
  ExecOptions exec;
  exec.ctx = ctx;
  exec.cached_blocks = cache_set.empty() ? nullptr : &cache_set.adverts;
  auto result = engine().Execute(*translated, exec);
  if (!result.ok()) return result.status();
  ApplyEngineTiming(result->stats, &costs);

  return Finish(query, std::move(*result), costs, std::move(*translated), ctx,
                &cache_set);
}

Result<QueryRun> DasSystem::ExecuteNaivePath(const PathExpr& query,
                                             obs::QueryContext* ctx) const {
  QueryCosts costs;
  ExecOptions exec;
  exec.ctx = ctx;
  auto result = engine().ExecuteNaive(exec);
  if (!result.ok()) return result.status();
  ApplyEngineTiming(result->stats, &costs);
  return Finish(query, std::move(*result), costs, TranslatedQuery{}, ctx);
}

Result<AggregateRun> DasSystem::ExecuteAggregatePath(
    const PathExpr& path, AggregateKind kind, obs::QueryContext* ctx) const {
  obs::Trace* trace = obs::TraceOf(ctx);
  QueryCosts costs;
  Stopwatch watch;
  obs::Span translate(trace, "translate");
  auto translated = client_->Translate(path);
  if (!translated.ok()) return translated.status();
  auto token = client_->AggregateIndexToken(path);
  if (!token.ok()) return token.status();
  translate.End();
  costs.client_translate_us = watch.ElapsedMicros();

  const CachedBlockSet cache_set = client_->AdvertiseCachedBlocks(trace);
  ExecOptions exec;
  exec.ctx = ctx;
  exec.cached_blocks = cache_set.empty() ? nullptr : &cache_set.adverts;
  auto result = engine().ExecuteAggregate(*translated, kind, *token, exec);
  if (!result.ok()) return result.status();
  ApplyEngineTiming(result->stats, &costs);
  const AggregateResponse& response = result->response;

  costs.bytes_shipped = response.payload.TotalBytes() +
                        static_cast<int64_t>(response.server_value.size());
  costs.blocks_shipped = static_cast<int>(response.payload.blocks.size());
  if (!costs.transmission_measured()) {
    costs.transmission_us = link().EstimateUs(costs.bytes_shipped);
    if (trace != nullptr) {
      trace->Record("transmit", costs.transmission_us, obs::Trace::kNoParent);
    }
  }

  watch.Restart();
  double decrypt_us = 0.0;
  auto answer = client_->FinishAggregate(path, response, &decrypt_us, trace,
                                         &cache_set);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  AggregateRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  run.engine_stats = std::move(result->stats);
  return run;
}

Status DasSystem::PropagateUpdate(const DeltaBuilder& builder) {
  // The in-process engine always tracks the mutated bundle (its caches —
  // the interval universe — are rebuilt), whether or not queries are
  // currently routed remotely.
  server_ = std::make_unique<ServerEngine>(&client_->database(),
                                           &client_->metadata());
  if (builder.empty()) return Status::Ok();  // no-op batch: nothing moved
  const uint64_t base = bundle_generation_;
  bundle_generation_ = base + 1;
  // Fresh engine, fresh (empty) plan cache — stamping the generation keeps
  // its cache keys aligned with what a remote daemon would compute.
  server_->SetDataGeneration(bundle_generation_);
  if (remote_ == nullptr) return Status::Ok();
  // Ship exactly this batch's side effects. PushDelta retries transient
  // failures; the daemon recognizes a replayed generation and applies the
  // delta at most once.
  const DeltaBundle delta = builder.Build(remote_->database(), base);
  auto generation = remote_->PushDelta(SerializeDelta(delta));
  if (!generation.ok()) return generation.status();
  bundle_generation_ = *generation;
  return Status::Ok();
}

Result<int> DasSystem::UpdateValues(const std::string& xpath,
                                    const std::string& value) {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  DeltaBuilder builder(client_.get());
  auto updated = builder.UpdateValues(*path, value);
  if (!updated.ok()) return updated.status();
  XCRYPT_RETURN_NOT_OK(PropagateUpdate(builder));
  return updated;
}

Status DasSystem::InsertSubtree(const std::string& parent_xpath,
                                const Document& fragment) {
  auto path = ParseXPath(parent_xpath);
  if (!path.ok()) return path.status();
  DeltaBuilder builder(client_.get());
  XCRYPT_RETURN_NOT_OK(builder.InsertSubtree(*path, fragment));
  return PropagateUpdate(builder);
}

Result<int> DasSystem::DeleteSubtrees(const std::string& xpath) {
  auto path = ParseXPath(xpath);
  if (!path.ok()) return path.status();
  DeltaBuilder builder(client_.get());
  auto removed = builder.DeleteSubtrees(*path);
  if (!removed.ok()) return removed.status();
  XCRYPT_RETURN_NOT_OK(PropagateUpdate(builder));
  return removed;
}

Result<HostedBundle> DasSystem::ExportBundle(const std::string& name) const {
  // B+-trees are move-only, so the copy goes through the (lossless for
  // server-visible state) image format.
  return DeserializeBundle(SerializeBundle(client_->database(),
                                           client_->metadata(), name,
                                           bundle_generation_));
}

Result<QueryRun> DasSystem::Finish(const PathExpr& query,
                                   EngineQueryResult engine_run,
                                   QueryCosts costs, TranslatedQuery translated,
                                   obs::QueryContext* ctx,
                                   const CachedBlockSet* cache_set) const {
  obs::Trace* trace = obs::TraceOf(ctx);
  const ServerResponse& response = engine_run.response;
  costs.bytes_shipped = response.TotalBytes();
  costs.blocks_shipped = static_cast<int>(response.blocks.size());
  if (!costs.transmission_measured()) {
    costs.transmission_us = link().EstimateUs(costs.bytes_shipped);
    // The simulated wire enters the trace as a recorded interval (remote
    // engines record their measured transmission themselves).
    if (trace != nullptr) {
      trace->Record("transmit", costs.transmission_us, obs::Trace::kNoParent);
    }
  }

  Stopwatch watch;
  double decrypt_us = 0.0;
  auto answer =
      client_->PostProcess(query, response, &decrypt_us, trace, cache_set);
  const double total_post_us = watch.ElapsedMicros();
  if (!answer.ok()) return answer.status();
  costs.decrypt_us = decrypt_us;
  costs.postprocess_us = total_post_us - decrypt_us;

  QueryRun run;
  run.answer = std::move(*answer);
  run.costs = costs;
  run.translated = std::move(translated);
  run.engine_stats = std::move(engine_run.stats);
  return run;
}

}  // namespace xcrypt
