#include "das/client_tuning.h"

namespace xcrypt {

Status ClientTuning::Validate() const {
  if (link_mbps <= 0.0) {
    return Status::InvalidArgument("link_mbps must be positive");
  }
  if (block_cache_bytes < 0) {
    return Status::InvalidArgument("block_cache_bytes must be >= 0");
  }
  if (threads < 0 || threads > 64) {
    return Status::InvalidArgument("threads must be in [0, 64]");
  }
  if (!crypto_kernel.empty() && crypto_kernel != "scalar" &&
      crypto_kernel != "aesni") {
    return Status::InvalidArgument("unknown crypto kernel: " + crypto_kernel);
  }
  XCRYPT_RETURN_NOT_OK(retry.Validate());
  XCRYPT_RETURN_NOT_OK(privacy.Validate());
  return Status::Ok();
}

}  // namespace xcrypt
