#include "data/nasa_generator.h"

#include <iterator>

#include "common/random.h"

namespace xcrypt {

namespace {

const char* kLastNames[] = {"Gliese",  "Jahreiss", "Messier", "Dreyer",
                            "Hubble",  "Leavitt",  "Cannon",  "Payne",
                            "Herschel", "Struve"};
const char* kPublishers[] = {"Astron. J.", "Astrophys. J.", "MNRAS",
                             "Astron. Astrophys.", "PASP"};
const char* kCities[] = {"Heidelberg", "Cambridge", "Pasadena", "Strasbourg",
                         "Tucson"};
const char* kTitleWords[] = {"catalogue", "survey",  "photometry", "spectra",
                             "parallax",  "clusters", "nebulae",    "orbits"};

}  // namespace

Document GenerateNasa(const NasaConfig& config) {
  Rng rng(config.seed);
  Document doc;
  const NodeId datasets = doc.AddRoot("datasets");

  for (int i = 0; i < config.datasets; ++i) {
    const NodeId dataset = doc.AddChild(datasets, "dataset");
    doc.AddAttribute(dataset, "subject", "astronomy");
    doc.AddLeaf(dataset, "altname", "CAT-" + std::to_string(1000 + i));

    const NodeId reference = doc.AddChild(dataset, "reference");
    const NodeId source = doc.AddChild(reference, "source");
    const NodeId other = doc.AddChild(source, "other");

    std::string title =
        kTitleWords[rng.Zipf(static_cast<int>(std::size(kTitleWords)),
                             config.value_skew)];
    title += " of ";
    title += kTitleWords[rng.Zipf(static_cast<int>(std::size(kTitleWords)),
                                  0.4)];
    doc.AddLeaf(other, "title", title);

    const NodeId date = doc.AddChild(other, "date");
    doc.AddLeaf(date, "year",
                std::to_string(1950 + rng.Zipf(50, config.value_skew)));
    doc.AddLeaf(other, "publisher",
                kPublishers[rng.Zipf(static_cast<int>(std::size(kPublishers)),
                                     config.value_skew)]);
    doc.AddLeaf(other, "city",
                kCities[rng.Zipf(static_cast<int>(std::size(kCities)), 0.6)]);

    const int num_authors = 1 + static_cast<int>(rng.UniformU64(0, 2));
    for (int a = 0; a < num_authors; ++a) {
      const NodeId author = doc.AddChild(other, "author");
      doc.AddLeaf(author, "initial",
                  std::string(1, static_cast<char>(
                                     'A' + rng.UniformU64(0, 25))));
      doc.AddLeaf(author, "last",
                  kLastNames[rng.Zipf(static_cast<int>(std::size(kLastNames)),
                                      config.value_skew)]);
      doc.AddLeaf(author, "age",
                  std::to_string(25 + rng.Zipf(50, 0.4)));
    }

    // tableHead/fields: extra depth, matching NASA's deep structure.
    const NodeId table = doc.AddChild(dataset, "tableHead");
    const NodeId fields = doc.AddChild(table, "fields");
    const int num_fields = 2 + static_cast<int>(rng.UniformU64(0, 3));
    for (int f = 0; f < num_fields; ++f) {
      const NodeId field = doc.AddChild(fields, "field");
      doc.AddLeaf(field, "name", rng.String(6));
      const NodeId definition = doc.AddChild(field, "definition");
      doc.AddLeaf(definition, "units", rng.Bernoulli(0.5) ? "mag" : "deg");
    }
  }
  return doc;
}

std::vector<SecurityConstraint> NasaConstraints() {
  const char* kSources[] = {
      "//author:(/initial, /last)",
      "//other:(//last, /title)",
      "//other:(/title, /publisher)",
      "//other:(/publisher, /date/year)",
      "//other:(//last, /city)",
      "//author:(/last, /age)",
  };
  std::vector<SecurityConstraint> out;
  for (const char* src : kSources) {
    auto sc = ParseSecurityConstraint(src);
    out.push_back(std::move(*sc));
  }
  return out;
}

}  // namespace xcrypt
