#include "data/xmark_generator.h"

#include <iterator>

#include "common/random.h"

namespace xcrypt {

namespace {

const char* kFirstNames[] = {"Jaak",   "Mehrdad", "Sinisa",  "Huei",
                             "Dariusz", "Yuri",    "Mitsuyuki", "Ewing",
                             "Annmarie", "Venkatesh", "Kazuo", "Takahira"};
const char* kCities[] = {"Vancouver", "Seoul",  "Tampa",  "Oslo",
                         "Lisbon",    "Nagoya", "Dublin", "Quito"};
const char* kCountries[] = {"Canada", "Korea", "USA", "Norway", "Portugal"};
const char* kCategories[] = {"books", "music", "travel", "sports", "garden",
                             "tools"};

}  // namespace

Document GenerateXMark(const XMarkConfig& config) {
  Rng rng(config.seed);
  Document doc;
  const NodeId site = doc.AddRoot("site");

  // people/person: the subtree the security constraints live in.
  const NodeId people = doc.AddChild(site, "people");
  for (int i = 0; i < config.people; ++i) {
    const NodeId person = doc.AddChild(people, "person");
    doc.AddAttribute(person, "id", "person" + std::to_string(i));
    const int first =
        rng.Zipf(static_cast<int>(std::size(kFirstNames)), config.value_skew);
    doc.AddLeaf(person, "name",
                std::string(kFirstNames[first]) + " " + rng.String(6));
    doc.AddLeaf(person, "emailaddress",
                "mailto:" + rng.String(7) + "@" + rng.String(5) + ".com");
    const NodeId address = doc.AddChild(person, "address");
    doc.AddLeaf(address, "street",
                std::to_string(1 + rng.UniformU64(0, 98)) + " " +
                    rng.String(8) + " St");
    doc.AddLeaf(address, "city",
                kCities[rng.Zipf(static_cast<int>(std::size(kCities)),
                                 config.value_skew)]);
    doc.AddLeaf(address, "country",
                kCountries[rng.Zipf(static_cast<int>(std::size(kCountries)),
                                    config.value_skew)]);
    doc.AddLeaf(person, "creditcard",
                std::to_string(1000 + rng.UniformU64(0, 8999)) + " " +
                    std::to_string(1000 + rng.UniformU64(0, 8999)));
    const NodeId profile = doc.AddChild(person, "profile");
    // Incomes cluster around round figures so the distribution is skewed —
    // exactly what frequency attacks exploit (Figure 6a).
    const int64_t base_income = 20000 + 10000 * rng.Zipf(9, 1.1);
    doc.AddLeaf(profile, "income", std::to_string(base_income));
    doc.AddLeaf(profile, "age",
                std::to_string(18 + rng.Zipf(60, 0.3)));
    doc.AddLeaf(profile, "education",
                rng.Bernoulli(0.5) ? "Graduate School" : "College");
    const NodeId interests = doc.AddChild(profile, "interest");
    doc.AddAttribute(interests, "category",
                     kCategories[rng.Zipf(
                         static_cast<int>(std::size(kCategories)), 0.7)]);
  }

  // regions/items: public breadth, queried but not protected.
  const NodeId regions = doc.AddChild(site, "regions");
  const NodeId namerica = doc.AddChild(regions, "namerica");
  for (int i = 0; i < config.items; ++i) {
    const NodeId item = doc.AddChild(namerica, "item");
    doc.AddAttribute(item, "id", "item" + std::to_string(i));
    doc.AddLeaf(item, "location",
                kCountries[rng.Zipf(static_cast<int>(std::size(kCountries)),
                                    0.5)]);
    doc.AddLeaf(item, "quantity",
                std::to_string(1 + rng.UniformU64(0, 4)));
    doc.AddLeaf(item, "itemname", rng.String(10));
    const NodeId desc = doc.AddChild(item, "description");
    doc.AddLeaf(desc, "text", rng.String(24));
  }

  // open_auctions: numeric values for range queries.
  const NodeId auctions = doc.AddChild(site, "open_auctions");
  for (int i = 0; i < config.items; ++i) {
    const NodeId auction = doc.AddChild(auctions, "open_auction");
    doc.AddAttribute(auction, "id", "auction" + std::to_string(i));
    doc.AddLeaf(auction, "initial",
                std::to_string(1 + rng.UniformU64(0, 199)) + ".00");
    doc.AddLeaf(auction, "current",
                std::to_string(10 + rng.UniformU64(0, 999)) + ".00");
    const NodeId bidder = doc.AddChild(auction, "bidder");
    doc.AddLeaf(bidder, "increase",
                std::to_string(1 + rng.UniformU64(0, 49)) + ".00");
  }

  return doc;
}

std::vector<SecurityConstraint> XMarkConstraints() {
  const char* kSources[] = {
      "//person:(/name, /creditcard)",
      "//person:(/name, /profile/income)",
      "//person:(/name, /emailaddress)",
      "//person:(/profile/income, /address/city)",
      "//person:(/creditcard, /profile/age)",
  };
  std::vector<SecurityConstraint> out;
  for (const char* src : kSources) {
    auto sc = ParseSecurityConstraint(src);
    out.push_back(std::move(*sc));
  }
  return out;
}

}  // namespace xcrypt
