#ifndef XCRYPT_DATA_HEALTHCARE_H_
#define XCRYPT_DATA_HEALTHCARE_H_

#include <vector>

#include "core/security_constraint.h"
#include "xml/document.h"

namespace xcrypt {

/// The health-care database of the paper's Figure 2: a hospital with two
/// patients (Betty and Matt), SSNs, treats/diseases/doctors, insurance
/// policies with @coverage attributes, and ages.
Document BuildHealthcareSample();

/// The security constraints of Example 3.1:
///   SC1: //insurance                      (node type)
///   SC2: //patient:(/pname, /SSN)         (association)
///   SC3: //patient:(/pname, //disease)    (association)
///   SC4: //treat:(/disease, /doctor)      (association)
std::vector<SecurityConstraint> HealthcareConstraints();

/// A larger synthetic hospital in the same schema (`num_patients` patients
/// with value skew), for tests and security experiments at scale.
Document BuildHospital(int num_patients, uint64_t seed);

}  // namespace xcrypt

#endif  // XCRYPT_DATA_HEALTHCARE_H_
