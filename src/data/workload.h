#ifndef XCRYPT_DATA_WORKLOAD_H_
#define XCRYPT_DATA_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/document.h"
#include "xpath/ast.h"

namespace xcrypt {

/// The three query classes of §7.1:
///   Qs — queries whose output node is a child of the document root;
///   Qm — queries whose output node sits at the middle level (h/2);
///   Ql — queries whose output node is a leaf.
enum class WorkloadKind { kQs, kQm, kQl };

const char* WorkloadKindName(WorkloadKind kind);

struct WorkloadQuery {
  std::string text;
  PathExpr expr;
};

/// Builds `count` queries of the given class against `doc`, deterministic
/// in `seed`. A share of the queries carries a value predicate drawn from
/// values actually present in the document (so answers are non-trivial),
/// matching the paper's use of 10 queries per class.
std::vector<WorkloadQuery> BuildWorkload(const Document& doc,
                                         WorkloadKind kind, int count,
                                         uint64_t seed);

}  // namespace xcrypt

#endif  // XCRYPT_DATA_WORKLOAD_H_
