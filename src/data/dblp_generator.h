#ifndef XCRYPT_DATA_DBLP_GENERATOR_H_
#define XCRYPT_DATA_DBLP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/security_constraint.h"
#include "xml/document.h"

namespace xcrypt {

/// Synthetic stand-in for a DBLP-style bibliography export: a shallow,
/// very wide document of person records, each holding a run of
/// publication entries (title, year, authors, jconf, label, keyword,
/// organization, abstract). Unlike NASA (deep) and XMark (mixed), DBLP's
/// weight is in fat text leaves — the abstracts — so at equal node count
/// it produces a much larger serialized image. That makes it the corpus
/// of choice for out-of-core storage experiments: ciphertext payload
/// dominates, index metadata does not. See DESIGN.md §3.
struct DblpConfig {
  int persons = 60;
  int publications_per_person = 6;
  uint64_t seed = 11;
  double value_skew = 0.8;   ///< Zipf theta for venue/keyword pools
  int abstract_sentences = 4;  ///< bulk knob: fatter abstracts, bigger blocks
};

Document GenerateDblp(const DblpConfig& config);

/// Association constraints for the bibliography: protect who wrote what
/// (FullName vs publication title/label), the author-organization link,
/// and the label-year association used for range probes.
std::vector<SecurityConstraint> DblpConstraints();

}  // namespace xcrypt

#endif  // XCRYPT_DATA_DBLP_GENERATOR_H_
