#include "data/workload.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "xpath/parser.h"

namespace xcrypt {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kQs:
      return "Qs";
    case WorkloadKind::kQm:
      return "Qm";
    case WorkloadKind::kQl:
      return "Ql";
  }
  return "?";
}

namespace {

struct TagInfo {
  std::string tag;
  int depth = 0;
  bool is_leaf = false;
  bool is_attribute = false;
  /// A few sample values for predicate construction (leaves only).
  std::vector<std::string> sample_values;
  /// Ancestor tags observed above this tag (deduplicated).
  std::set<std::string> ancestors;
};

std::map<std::string, TagInfo> ScanTags(const Document& doc) {
  std::map<std::string, TagInfo> tags;
  for (NodeId id : doc.PreOrder()) {
    const Node& n = doc.node(id);
    TagInfo& info = tags[n.tag];
    info.tag = n.tag;
    info.depth = doc.Depth(id);
    info.is_leaf = doc.IsLeaf(id);
    info.is_attribute = n.is_attribute;
    if (info.is_leaf && !n.value.empty() &&
        info.sample_values.size() < 8) {
      info.sample_values.push_back(n.value);
    }
    for (NodeId p = n.parent; p != kNullNode; p = doc.node(p).parent) {
      info.ancestors.insert(doc.node(p).tag);
    }
  }
  return tags;
}

}  // namespace

std::vector<WorkloadQuery> BuildWorkload(const Document& doc,
                                         WorkloadKind kind, int count,
                                         uint64_t seed) {
  Rng rng(seed);
  const auto tags = ScanTags(doc);
  const int height = doc.Height();
  const std::string root_tag = doc.node(doc.root()).tag;

  // Partition candidate output tags by class.
  std::vector<const TagInfo*> candidates;
  for (const auto& [name, info] : tags) {
    if (info.is_attribute || name == root_tag) continue;
    switch (kind) {
      case WorkloadKind::kQs:
        if (info.depth == 1) candidates.push_back(&info);
        break;
      case WorkloadKind::kQm: {
        const int mid = std::max(1, height / 2);
        if (info.depth == mid || info.depth == mid + 1) {
          candidates.push_back(&info);
        }
        break;
      }
      case WorkloadKind::kQl:
        if (info.is_leaf) candidates.push_back(&info);
        break;
    }
  }
  if (candidates.empty()) {
    // Degenerate documents: fall back to any non-root tag.
    for (const auto& [name, info] : tags) {
      if (!info.is_attribute && name != root_tag) {
        candidates.push_back(&info);
      }
    }
  }

  std::vector<WorkloadQuery> out;
  for (int i = 0; i < count && !candidates.empty(); ++i) {
    const TagInfo& target =
        *candidates[rng.UniformU64(0, candidates.size() - 1)];
    std::string text;
    const int flavor = static_cast<int>(rng.UniformU64(0, 2));
    if (kind == WorkloadKind::kQs) {
      text = "/" + root_tag + "/" + target.tag;
    } else if (flavor == 0 || target.ancestors.size() <= 1) {
      text = "//" + target.tag;
    } else {
      // Anchor through a random proper ancestor (not the root, for
      // variety in shape).
      std::vector<std::string> anc(target.ancestors.begin(),
                                   target.ancestors.end());
      anc.erase(std::remove(anc.begin(), anc.end(), root_tag), anc.end());
      if (anc.empty()) {
        text = "//" + target.tag;
      } else {
        text = "//" + anc[rng.UniformU64(0, anc.size() - 1)] + "//" +
               target.tag;
      }
    }
    // A third of leaf queries anchor through an ancestor with a value
    // predicate on the output tag, e.g. //treat[.//disease='x']//disease.
    if (kind == WorkloadKind::kQl && flavor == 2 &&
        !target.sample_values.empty() && !target.ancestors.empty()) {
      const std::string& value = target.sample_values[rng.UniformU64(
          0, target.sample_values.size() - 1)];
      std::vector<std::string> anc(target.ancestors.begin(),
                                   target.ancestors.end());
      if (value.find('\'') == std::string::npos) {
        const std::string& a = anc[rng.UniformU64(0, anc.size() - 1)];
        text = "//" + a + "[.//" + target.tag + "='" + value + "']//" +
               target.tag;
      }
    }
    auto expr = ParseXPath(text);
    if (!expr.ok()) continue;
    out.push_back(WorkloadQuery{text, std::move(*expr)});
  }
  return out;
}

}  // namespace xcrypt
