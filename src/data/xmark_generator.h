#ifndef XCRYPT_DATA_XMARK_GENERATOR_H_
#define XCRYPT_DATA_XMARK_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/security_constraint.h"
#include "xml/document.h"

namespace xcrypt {

/// Synthetic stand-in for the XMark auction benchmark (§7.1). The paper's
/// experiments only depend on document shape and leaf-value frequency
/// distributions, so this generator reproduces the XMark fragments its
/// constraint graph (Figure 8a) references: site/people/person with
/// profile, name, age, income, address, creditcard, emailaddress — plus
/// regions/items and auctions for realistic breadth. See DESIGN.md §3.
struct XMarkConfig {
  int people = 100;
  int items = 50;
  uint64_t seed = 42;
  double value_skew = 0.9;  ///< Zipf theta for categorical pools
};

Document GenerateXMark(const XMarkConfig& config);

/// The association constraints for the XMark experiments, shaped after the
/// paper's Figure 8(a) constraint graph: protect who owns which credit
/// card, the name-income and name-email associations, and the link between
/// income and address.
std::vector<SecurityConstraint> XMarkConstraints();

}  // namespace xcrypt

#endif  // XCRYPT_DATA_XMARK_GENERATOR_H_
