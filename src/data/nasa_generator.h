#ifndef XCRYPT_DATA_NASA_GENERATOR_H_
#define XCRYPT_DATA_NASA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/security_constraint.h"
#include "xml/document.h"

namespace xcrypt {

/// Synthetic stand-in for the NASA astronomy dataset from the UW XML
/// repository (§7.1). NASA is the paper's "real, deep" document; this
/// generator reproduces its depth and the tags of the paper's Figure 8(b)
/// constraint graph: datasets/dataset/reference/source/other with authors
/// (initial, last), title, date, publisher, city, age. See DESIGN.md §3.
struct NasaConfig {
  int datasets = 80;
  uint64_t seed = 7;
  double value_skew = 1.0;
};

Document GenerateNasa(const NasaConfig& config);

/// Association constraints after the paper's Figure 8(b): protect which
/// author (initial/last) wrote what and where/when it was published.
std::vector<SecurityConstraint> NasaConstraints();

}  // namespace xcrypt

#endif  // XCRYPT_DATA_NASA_GENERATOR_H_
