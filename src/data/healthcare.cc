#include "data/healthcare.h"

#include "common/random.h"

namespace xcrypt {

Document BuildHealthcareSample() {
  Document doc;
  const NodeId hospital = doc.AddRoot("hospital");

  // Patient 1: Betty.
  const NodeId p1 = doc.AddChild(hospital, "patient");
  doc.AddLeaf(p1, "SSN", "763895");
  doc.AddLeaf(p1, "pname", "Betty");
  const NodeId treat1 = doc.AddChild(p1, "treat");
  doc.AddLeaf(treat1, "disease", "diarrhea");
  doc.AddLeaf(treat1, "doctor", "Smith");
  doc.AddLeaf(treat1, "doctor", "Walker");
  const NodeId ins1 = doc.AddChild(p1, "insurance");
  doc.AddAttribute(ins1, "coverage", "1000000");
  doc.AddLeaf(ins1, "policy#", "34221");
  doc.AddLeaf(ins1, "policy#", "26544");
  const NodeId ins2 = doc.AddChild(p1, "insurance");
  doc.AddAttribute(ins2, "coverage", "10000");
  doc.AddLeaf(ins2, "policy#", "5000");
  doc.AddLeaf(p1, "age", "35");

  // Patient 2: Matt.
  const NodeId p2 = doc.AddChild(hospital, "patient");
  doc.AddLeaf(p2, "SSN", "276543");
  doc.AddLeaf(p2, "pname", "Matt");
  const NodeId treat2 = doc.AddChild(p2, "treat");
  doc.AddLeaf(treat2, "disease", "leukemia");
  doc.AddLeaf(treat2, "doctor", "Brown");
  const NodeId treat3 = doc.AddChild(p2, "treat");
  doc.AddLeaf(treat3, "disease", "diarrhea");
  doc.AddLeaf(treat3, "doctor", "Smith");
  doc.AddLeaf(p2, "age", "40");
  const NodeId ins3 = doc.AddChild(p2, "insurance");
  doc.AddAttribute(ins3, "coverage", "78543");
  doc.AddLeaf(ins3, "policy#", "26544");

  return doc;
}

std::vector<SecurityConstraint> HealthcareConstraints() {
  const char* kSources[] = {
      "//insurance",
      "//patient:(/pname, /SSN)",
      "//patient:(/pname, //disease)",
      "//treat:(/disease, /doctor)",
  };
  std::vector<SecurityConstraint> out;
  for (const char* src : kSources) {
    auto sc = ParseSecurityConstraint(src);
    // The sources are compile-time constants; parsing cannot fail.
    out.push_back(std::move(*sc));
  }
  return out;
}

Document BuildHospital(int num_patients, uint64_t seed) {
  Rng rng(seed);
  static const char* kDiseases[] = {"diarrhea", "leukemia",  "influenza",
                                    "asthma",   "diabetes",  "hepatitis",
                                    "measles",  "pneumonia", "anemia"};
  static const char* kDoctors[] = {"Smith", "Walker", "Brown", "Jones",
                                   "Chen",  "Patel",  "Garcia"};
  static const char* kNames[] = {"Betty", "Matt",  "Alice", "Bob",   "Carol",
                                 "Dave",  "Erin",  "Frank", "Grace", "Heidi",
                                 "Ivan",  "Judy",  "Ken",   "Laura", "Mallory",
                                 "Niaj",  "Olivia"};

  Document doc;
  const NodeId hospital = doc.AddRoot("hospital");
  for (int i = 0; i < num_patients; ++i) {
    const NodeId p = doc.AddChild(hospital, "patient");
    doc.AddLeaf(p, "SSN", std::to_string(100000 + rng.UniformU64(0, 899999)));
    doc.AddLeaf(p, "pname",
                kNames[rng.Zipf(static_cast<int>(std::size(kNames)), 0.8)]);
    const int treats = 1 + static_cast<int>(rng.UniformU64(0, 2));
    for (int t = 0; t < treats; ++t) {
      const NodeId treat = doc.AddChild(p, "treat");
      doc.AddLeaf(treat, "disease",
                  kDiseases[rng.Zipf(static_cast<int>(std::size(kDiseases)),
                                     1.0)]);
      const int docs = 1 + static_cast<int>(rng.UniformU64(0, 1));
      for (int d = 0; d < docs; ++d) {
        doc.AddLeaf(treat, "doctor",
                    kDoctors[rng.Zipf(static_cast<int>(std::size(kDoctors)),
                                      0.5)]);
      }
    }
    const NodeId ins = doc.AddChild(p, "insurance");
    doc.AddAttribute(ins, "coverage",
                     std::to_string(10000 * (1 + rng.UniformU64(0, 99))));
    doc.AddLeaf(ins, "policy#",
                std::to_string(10000 + rng.UniformU64(0, 89999)));
    doc.AddLeaf(p, "age", std::to_string(18 + rng.UniformU64(0, 72)));
  }
  return doc;
}

}  // namespace xcrypt
