#include "data/dblp_generator.h"

#include <iterator>
#include <string>

#include "common/random.h"

namespace xcrypt {

namespace {

const char* kSurnames[] = {"Zhang", "Chan",  "Salem",  "Ozsu",
                           "Tamer", "Huang", "Keller", "Moro",
                           "Vagena", "Tsotras"};
const char* kVenues[] = {
    "International Conference on Very Large Data Bases",
    "International Conference on Data Engineering",
    "International Conference on Extending Database Technology",
    "ACM SIGMOD Conference",
    "Workshop on Advances in Geographic Information Systems",
};
const char* kKeywords[] = {"Query Evaluation", "Xml Database",
                           "Access Control",   "Optimization Technique",
                           "Graph Partitioning", "Data Warehouse",
                           "Shortest Path",    "Relation Algebra"};
const char* kOrganizations[] = {"University of Waterloo", "UC Riverside",
                                "Politecnico di Milano", "null"};
// Sentence fragments chained into abstracts: the fat leaves that give the
// corpus its payload-heavy character.
const char* kPhrases[] = {
    "In this paper we summarize our research on optimizing XML queries",
    "this work defines a logical algebra and logical optimization rules",
    "the algebra translates into native or extended-relational plans",
    "we describe a disk-based algorithm for large network systems",
    "the approach processes the data piece by piece to bound memory",
    "experiments show the method scales to documents beyond main memory",
    "fine-grained access controls define privileges per element",
    "a compact labeling scheme keeps the security check off the hot path",
};

}  // namespace

Document GenerateDblp(const DblpConfig& config) {
  Rng rng(config.seed);
  Document doc;
  const NodeId dblp = doc.AddRoot("dblp");
  for (int p = 0; p < config.persons; ++p) {
    const NodeId person = doc.AddChild(dblp, "person");
    doc.AddAttribute(person, "id", "a" + std::to_string(p));
    const int surname =
        rng.Zipf(static_cast<int>(std::size(kSurnames)), config.value_skew);
    doc.AddLeaf(person, "FullName",
                rng.String(5) + " " + kSurnames[surname]);
    doc.AddLeaf(person, "organization",
                kOrganizations[rng.Zipf(
                    static_cast<int>(std::size(kOrganizations)), 0.6)]);
    for (int i = 0; i < config.publications_per_person; ++i) {
      const NodeId pub = doc.AddChild(person, "publication");
      doc.AddLeaf(pub, "title",
                  "On " + rng.String(8) + " in " + rng.String(6) +
                      " systems");
      // Years cluster toward the recent end — the skew range probes see.
      doc.AddLeaf(pub, "year",
                  std::to_string(2006 - rng.Zipf(12, config.value_skew)));
      std::string authors;
      const int coauthors = static_cast<int>(rng.UniformU64(0, 3));
      for (int a = 0; a < coauthors; ++a) {
        if (!authors.empty()) authors += ",";
        authors += rng.String(6) + " " +
                   kSurnames[rng.Zipf(
                       static_cast<int>(std::size(kSurnames)), 0.5)];
      }
      doc.AddLeaf(pub, "authors", authors);
      doc.AddLeaf(pub, "jconf",
                  kVenues[rng.Zipf(static_cast<int>(std::size(kVenues)),
                                   config.value_skew)]);
      doc.AddLeaf(pub, "label",
                  std::to_string(100 + rng.UniformU64(0, 899)));
      std::string keyword;
      const int nkw = 1 + static_cast<int>(rng.UniformU64(0, 2));
      for (int k = 0; k < nkw; ++k) {
        keyword += kKeywords[rng.Zipf(
            static_cast<int>(std::size(kKeywords)), 0.7)];
        keyword += ";";
      }
      doc.AddLeaf(pub, "keyword", keyword);
      std::string abstract;
      for (int s = 0; s < config.abstract_sentences; ++s) {
        abstract += kPhrases[rng.UniformU64(0, std::size(kPhrases) - 1)];
        abstract += " " + rng.String(12) + ". ";
      }
      doc.AddLeaf(pub, "abstract", abstract);
    }
  }
  return doc;
}

std::vector<SecurityConstraint> DblpConstraints() {
  const char* kSources[] = {
      "//person:(/FullName, /publication/title)",
      "//person:(/FullName, /organization)",
      "//person:(/organization, /publication/label)",
      "//publication:(/label, /year)",
      // Node-type constraint: unpublished manuscripts' abstracts are
      // confidential outright, so every abstract subtree is an encryption
      // block under every scheme. This pulls the fat abstract leaves into
      // ciphertext payload — the bulk of the database — which is what
      // makes DBLP the out-of-core corpus.
      "//publication/abstract",
  };
  std::vector<SecurityConstraint> out;
  for (const char* src : kSources) {
    auto sc = ParseSecurityConstraint(src);
    out.push_back(std::move(*sc));
  }
  return out;
}

}  // namespace xcrypt
