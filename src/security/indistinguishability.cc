#include "security/indistinguishability.h"

#include <algorithm>

#include "common/random.h"
#include "xml/stats.h"

namespace xcrypt {

Document PermuteTagValues(const Document& doc, const std::string& tag,
                          uint64_t seed) {
  Document out = doc;
  std::vector<NodeId> targets;
  for (NodeId id : out.PreOrder()) {
    if (out.node(id).tag == tag && out.IsLeaf(id) &&
        !out.node(id).value.empty()) {
      targets.push_back(id);
    }
  }
  Rng rng(seed);
  const std::vector<int> perm =
      rng.Permutation(static_cast<int>(targets.size()));
  std::vector<std::string> values;
  values.reserve(targets.size());
  for (NodeId id : targets) values.push_back(out.node(id).value);
  for (size_t i = 0; i < targets.size(); ++i) {
    out.node(targets[i]).value = values[perm[i]];
  }
  return out;
}

IndistinguishabilityReport CheckIndistinguishable(const Client& a,
                                                  const Client& b) {
  IndistinguishabilityReport report;
  report.size_a = a.database().TotalCiphertextBytes();
  report.size_b = b.database().TotalCiphertextBytes();
  report.sizes_equal = report.size_a == report.size_b &&
                       a.database().blocks.size() == b.database().blocks.size();

  const DocumentStats stats_a(a.original());
  const DocumentStats stats_b(b.original());
  report.frequencies_equal = true;
  if (stats_a.value_histograms().size() != stats_b.value_histograms().size()) {
    report.frequencies_equal = false;
  } else {
    for (const auto& [tag, hist_a] : stats_a.value_histograms()) {
      const ValueHistogram* hist_b = stats_b.HistogramFor(tag);
      if (hist_b == nullptr) {
        report.frequencies_equal = false;
        break;
      }
      // Same domain, same per-value occurrence frequency (Def. 3.1 (2)).
      if (hist_a.counts != hist_b->counts) {
        report.frequencies_equal = false;
        break;
      }
    }
  }
  return report;
}

}  // namespace xcrypt
