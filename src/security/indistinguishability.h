#ifndef XCRYPT_SECURITY_INDISTINGUISHABILITY_H_
#define XCRYPT_SECURITY_INDISTINGUISHABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/client.h"
#include "xml/document.h"

namespace xcrypt {

/// Builds a candidate database D' from D by permuting the values of `tag`
/// leaves across their positions (§4.1's candidate construction): D' has
/// identical structure, domain, and occurrence frequencies, but different
/// value *associations* — so D ~ D' (Definition 3.1) while D' does not
/// contain D's sensitive associations.
Document PermuteTagValues(const Document& doc, const std::string& tag,
                          uint64_t seed);

/// Checks Definition 3.1 against two *hosted* systems sharing the same
/// constraints and scheme kind: equal encrypted sizes (size-based attack,
/// condition 1) and equal per-attribute plaintext occurrence-frequency
/// multisets (frequency-based attack, condition 2).
struct IndistinguishabilityReport {
  bool sizes_equal = false;
  bool frequencies_equal = false;
  int64_t size_a = 0;
  int64_t size_b = 0;

  bool Indistinguishable() const { return sizes_equal && frequencies_equal; }
};

IndistinguishabilityReport CheckIndistinguishable(const Client& a,
                                                  const Client& b);

}  // namespace xcrypt

#endif  // XCRYPT_SECURITY_INDISTINGUISHABILITY_H_
