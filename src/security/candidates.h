#ifndef XCRYPT_SECURITY_CANDIDATES_H_
#define XCRYPT_SECURITY_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "common/bigint.h"
#include "xml/stats.h"

namespace xcrypt {

/// Exact candidate-database counts from the paper's security theorems.
/// "Large" in Definitions 3.3/3.4 means exponential; these functions
/// compute the counts exactly so experiments and tests can verify the
/// claimed magnitudes (e.g. 27720 for k = {3,4,5}, 1001 for n=15, k=5).
class CandidateCounter {
 public:
  /// Theorem 4.1: one attribute with plaintext occurrence frequencies
  /// {k_1..k_n} encrypted with decoys yields (Σk_i)! / Π(k_i!) candidate
  /// plaintext-to-ciphertext mappings.
  static BigUInt DecoyMappings(const std::vector<uint64_t>& frequencies);

  /// Same, reading the frequencies from a value histogram.
  static BigUInt DecoyMappings(const ValueHistogram& histogram);

  /// Theorem 5.1: an encryption block with n_i leaves shown as k_i grouped
  /// intervals admits C(n_i - 1, k_i - 1) structures; blocks multiply.
  /// Pass one (leaves, intervals) pair per block.
  static BigUInt DsiStructures(
      const std::vector<std::pair<uint64_t, uint64_t>>& blocks);

  /// Theorem 5.2: splitting k plaintext values into n ciphertext values in
  /// an order-preserving way admits C(n - 1, k - 1) mappings.
  static BigUInt ValueSplittings(uint64_t n_ciphertext, uint64_t k_plaintext);
};

}  // namespace xcrypt

#endif  // XCRYPT_SECURITY_CANDIDATES_H_
