#include "security/belief.h"

#include <algorithm>

namespace xcrypt {

BeliefTracker::BeliefTracker(uint64_t k_plaintext, uint64_t n_ciphertext)
    : k_(std::max<uint64_t>(k_plaintext, 1)),
      n_(std::max(n_ciphertext, k_)) {
  const BigUInt mappings = BigUInt::Binomial(n_ - 1, k_ - 1);
  const double denom = std::max(1.0, static_cast<double>(
                                         mappings.ToU64Saturated() == UINT64_MAX
                                             ? 1.8e19
                                             : mappings.ToU64Saturated()));
  posterior_ = 1.0 / denom;
  history_.push_back(PriorBelief());
}

double BeliefTracker::PriorBelief() const {
  return 1.0 / static_cast<double>(k_);
}

double BeliefTracker::ObserveQuery() {
  // The first observed query moves the belief from 1/k to 1/C(n-1, k-1);
  // every further query leaves it unchanged (Theorem 6.1).
  history_.push_back(posterior_);
  return posterior_;
}

bool BeliefTracker::NonIncreasing() const {
  for (size_t i = 1; i < history_.size(); ++i) {
    if (history_[i] > history_[i - 1] + 1e-15) return false;
  }
  return true;
}

}  // namespace xcrypt
