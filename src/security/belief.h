#ifndef XCRYPT_SECURITY_BELIEF_H_
#define XCRYPT_SECURITY_BELIEF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bigint.h"

namespace xcrypt {

/// Tracks the attacker's belief probability Bel(B(A)) that a sensitive
/// association holds in a given encryption block, as the attacker observes
/// queries and responses (Definition 3.5 / Theorem 6.1).
///
/// For an association SC //a:(b1, b2) with k distinct plaintext values of
/// the encrypted leg and n ciphertext values (n > k after OPESS splitting):
///   - before any query the prior is 1/k;
///   - after the first query p[//b1=v1][//b2=v2] the belief becomes
///     1 / C(n-1, k-1), which is <= 1/k since C(n-1, k-1) >= k;
///   - further queries leave it unchanged.
class BeliefTracker {
 public:
  /// `k` distinct plaintext values, `n` ciphertext values after splitting.
  BeliefTracker(uint64_t k_plaintext, uint64_t n_ciphertext);

  /// Belief before any query: 1/k.
  double PriorBelief() const;

  /// Records one observed query+answer and returns the belief after it.
  double ObserveQuery();

  /// The belief sequence so far (prior first).
  const std::vector<double>& history() const { return history_; }

  /// True if the sequence never increased — the property Theorem 6.1
  /// guarantees.
  bool NonIncreasing() const;

  uint64_t k() const { return k_; }
  uint64_t n() const { return n_; }

 private:
  uint64_t k_;
  uint64_t n_;
  double posterior_;
  std::vector<double> history_;
};

}  // namespace xcrypt

#endif  // XCRYPT_SECURITY_BELIEF_H_
