#include "security/candidates.h"

namespace xcrypt {

BigUInt CandidateCounter::DecoyMappings(
    const std::vector<uint64_t>& frequencies) {
  return BigUInt::Multinomial(frequencies);
}

BigUInt CandidateCounter::DecoyMappings(const ValueHistogram& histogram) {
  std::vector<uint64_t> frequencies;
  frequencies.reserve(histogram.counts.size());
  for (const auto& [value, count] : histogram.counts) {
    frequencies.push_back(static_cast<uint64_t>(count));
  }
  return DecoyMappings(frequencies);
}

BigUInt CandidateCounter::DsiStructures(
    const std::vector<std::pair<uint64_t, uint64_t>>& blocks) {
  BigUInt total(1);
  for (const auto& [leaves, intervals] : blocks) {
    if (leaves == 0 || intervals == 0) continue;
    total.Mul(BigUInt::Binomial(leaves - 1, intervals - 1));
  }
  return total;
}

BigUInt CandidateCounter::ValueSplittings(uint64_t n_ciphertext,
                                          uint64_t k_plaintext) {
  if (n_ciphertext == 0 || k_plaintext == 0) return BigUInt(0);
  return BigUInt::Binomial(n_ciphertext - 1, k_plaintext - 1);
}

}  // namespace xcrypt
