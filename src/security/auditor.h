#ifndef XCRYPT_SECURITY_AUDITOR_H_
#define XCRYPT_SECURITY_AUDITOR_H_

#include <string>
#include <vector>

#include "core/client.h"
#include "core/security_constraint.h"
#include "security/belief.h"

namespace xcrypt {

/// Watches a query session from the attacker's vantage point (§6.3):
/// which executed queries are captured by which security constraints, and
/// how the attacker's belief Bel(B(A)) evolves — the trajectory Theorem
/// 6.1 proves non-increasing.
///
/// The data owner runs this next to a DasSystem to audit, per constraint,
/// how much the observable query stream could have told the server:
///
///   SessionAuditor auditor(constraints);
///   auditor.Calibrate(das.client());
///   ... auditor.Observe(query) before/after each das.Execute(query) ...
///   for (const auto& row : auditor.Report()) { ... }
class SessionAuditor {
 public:
  explicit SessionAuditor(std::vector<SecurityConstraint> constraints);

  /// Reads the (k, n) cardinalities of each association SC's encrypted leg
  /// from a hosted client — k distinct plaintext values, n ciphertext
  /// values after OPESS splitting — and initializes the belief trackers.
  /// Node-type SCs rest on the Vernam cipher's perfect security and keep a
  /// flat belief.
  void Calibrate(const Client& client);

  /// Records one executed query. Returns the indices of the constraints
  /// that capture it (per §3.2's captured-query semantics).
  std::vector<int> Observe(const PathExpr& query);

  struct ConstraintReport {
    std::string constraint;
    bool is_association = false;
    int captured_queries = 0;   ///< observed queries this SC captures
    int observed_queries = 0;   ///< all observed queries
    double prior_belief = 0.0;
    double posterior_belief = 0.0;
    bool non_increasing = true;  ///< the Theorem 6.1 guarantee
  };

  /// Per-constraint summary of the session so far.
  std::vector<ConstraintReport> Report() const;

 private:
  struct Entry {
    SecurityConstraint constraint;
    BeliefTracker tracker{1, 2};
    bool calibrated = false;
    int captured = 0;
  };

  std::vector<Entry> entries_;
  int observed_ = 0;
};

}  // namespace xcrypt

#endif  // XCRYPT_SECURITY_AUDITOR_H_
