#include "security/auditor.h"

namespace xcrypt {

namespace {

/// Qualified tag ('@'-prefixed for attributes) of a relative leg's target.
std::string LegTargetTag(const PathExpr& leg) {
  const Step& last = leg.steps.back();
  return (last.is_attribute ? "@" : "") + last.tag;
}

}  // namespace

SessionAuditor::SessionAuditor(std::vector<SecurityConstraint> constraints) {
  entries_.reserve(constraints.size());
  for (SecurityConstraint& sc : constraints) {
    Entry entry;
    entry.constraint = std::move(sc);
    entries_.push_back(std::move(entry));
  }
}

void SessionAuditor::Calibrate(const Client& client) {
  for (Entry& entry : entries_) {
    if (!entry.constraint.IsAssociation()) continue;
    // Find the encrypted leg: the one whose target tag carries an OPESS
    // index (§6.3: "the values of at least one of b1, b2 should be
    // encrypted").
    const auto& [q1, q2] = *entry.constraint.association;
    for (const PathExpr* leg : {&q1, &q2}) {
      const std::string tag = LegTargetTag(*leg);
      auto opess_it = client.index_meta().opess.find(tag);
      if (opess_it == client.index_meta().opess.end()) continue;
      const uint64_t k = opess_it->second.ordinals.size();
      const std::string token = TagToken(client.index_meta(), tag);
      auto tree_it = client.metadata().value_indexes.find(token);
      const uint64_t n =
          tree_it == client.metadata().value_indexes.end()
              ? k
              : static_cast<uint64_t>(tree_it->second.KeyHistogram().size());
      entry.tracker = BeliefTracker(k, n);
      entry.calibrated = true;
      break;
    }
  }
}

std::vector<int> SessionAuditor::Observe(const PathExpr& query) {
  ++observed_;
  std::vector<int> capturing;
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (!IsCapturedBy(query, entry.constraint)) continue;
    capturing.push_back(static_cast<int>(i));
    ++entry.captured;
    if (entry.constraint.IsAssociation() && entry.calibrated) {
      entry.tracker.ObserveQuery();
    }
    // Node-type SCs: the Vernam pseudonyms are perfectly secure, the
    // belief never moves — nothing to update.
  }
  return capturing;
}

std::vector<SessionAuditor::ConstraintReport> SessionAuditor::Report() const {
  std::vector<ConstraintReport> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    ConstraintReport report;
    report.constraint = entry.constraint.ToString();
    report.is_association = entry.constraint.IsAssociation();
    report.captured_queries = entry.captured;
    report.observed_queries = observed_;
    if (report.is_association && entry.calibrated) {
      report.prior_belief = entry.tracker.PriorBelief();
      report.posterior_belief = entry.tracker.history().back();
      report.non_increasing = entry.tracker.NonIncreasing();
    } else {
      // Node-type SC (or uncalibrated): perfect secrecy of the Vernam
      // tag pseudonyms keeps prior == posterior.
      report.prior_belief = 0.0;
      report.posterior_belief = 0.0;
      report.non_increasing = true;
    }
    out.push_back(std::move(report));
  }
  return out;
}

}  // namespace xcrypt
