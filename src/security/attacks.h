#ifndef XCRYPT_SECURITY_ATTACKS_H_
#define XCRYPT_SECURITY_ATTACKS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bigint.h"
#include "xml/stats.h"

namespace xcrypt {

/// The attacker's view of one attribute after encryption: distinct
/// ciphertext identifiers with their occurrence counts. Collected from the
/// encrypted database (block payloads would be counted if the scheme
/// deterministically encrypted leaves) or from the value index.
struct CiphertextHistogram {
  /// ciphertext id -> occurrence count, in ciphertext (range) order.
  std::vector<std::pair<int64_t, int64_t>> counts;

  int64_t TotalOccurrences() const;
};

/// Result of a frequency-based attack (§3.3) against one attribute.
struct FrequencyAttackResult {
  int plaintext_values = 0;
  /// Values whose frequency uniquely pins down their ciphertext — cracked.
  int cracked = 0;
  /// Fraction of values cracked.
  double crack_rate = 0.0;
  /// Number of consistent plaintext->ciphertext assignments the attacker
  /// is left with (1 means fully cracked; astronomically large means the
  /// attack failed).
  BigUInt consistent_mappings;
};

/// Simulates the frequency-based attack of §3.3: the attacker knows the
/// exact plaintext value frequencies and tries to match them against the
/// observed ciphertext frequencies.
///
/// Matching model: a plaintext value is *cracked* when its occurrence
/// count appears exactly once among plaintext counts AND exactly one
/// ciphertext has that count (deterministic 1:1 encryption); the count of
/// consistent order-preserving groupings quantifies the residual ambiguity
/// when splitting/decoys were applied.
FrequencyAttackResult SimulateFrequencyAttack(
    const ValueHistogram& plaintext, const CiphertextHistogram& ciphertext);

/// The attacker's view under *naive deterministic* per-leaf encryption
/// (no decoy): each plaintext value maps to one ciphertext with an
/// identical count — the strawman of §4.1 that the attack cracks.
CiphertextHistogram NaiveDeterministicView(const ValueHistogram& plaintext);

/// The attacker's view under decoy encryption (§4.1): every occurrence
/// becomes a distinct ciphertext with count 1.
CiphertextHistogram DecoyView(const ValueHistogram& plaintext);

/// Size-based attack (§3.3): given candidate databases' encrypted sizes,
/// returns how many candidates survive (have the same size as the hosted
/// database). All-survive means the attack learned nothing.
int SizeAttackSurvivors(int64_t hosted_size,
                        const std::vector<int64_t>& candidate_sizes);

}  // namespace xcrypt

#endif  // XCRYPT_SECURITY_ATTACKS_H_
