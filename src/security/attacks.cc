#include "security/attacks.h"

#include <algorithm>

namespace xcrypt {

int64_t CiphertextHistogram::TotalOccurrences() const {
  int64_t total = 0;
  for (const auto& [id, count] : counts) total += count;
  return total;
}

namespace {

/// Ways to split the ordered ciphertext count sequence into consecutive
/// groups whose sums equal the plaintext counts in order (the attacker's
/// "group adjacent ciphertext values until they match" strategy, §5.2.1).
BigUInt CountOrderedPartitions(const std::vector<int64_t>& plain_counts,
                               const std::vector<int64_t>& cipher_counts) {
  const size_t k = plain_counts.size();
  const size_t n = cipher_counts.size();
  // prefix sums of ciphertext counts
  std::vector<int64_t> prefix(n + 1, 0);
  for (size_t j = 0; j < n; ++j) prefix[j + 1] = prefix[j] + cipher_counts[j];
  // plain prefix sums
  std::vector<int64_t> plain_prefix(k + 1, 0);
  for (size_t i = 0; i < k; ++i) {
    plain_prefix[i + 1] = plain_prefix[i] + plain_counts[i];
  }
  // f[i][j]: ways to realize the first i plaintext values with the first j
  // ciphertext values. Transition: the i-th group must end exactly where
  // the cumulative sums agree.
  std::vector<std::vector<BigUInt>> f(k + 1,
                                      std::vector<BigUInt>(n + 1, BigUInt()));
  f[0][0] = BigUInt(1);
  for (size_t i = 1; i <= k; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      if (prefix[j] != plain_prefix[i]) continue;
      // Any j' < j with prefix[j'] == plain_prefix[i-1] can end group i-1.
      for (size_t jp = i - 1; jp < j; ++jp) {
        if (prefix[jp] == plain_prefix[i - 1] && !f[i - 1][jp].IsZero()) {
          f[i][j].Add(f[i - 1][jp]);
        }
      }
    }
  }
  return f[k][n];
}

}  // namespace

FrequencyAttackResult SimulateFrequencyAttack(
    const ValueHistogram& plaintext, const CiphertextHistogram& ciphertext) {
  FrequencyAttackResult result;
  result.plaintext_values = plaintext.DistinctValues();

  std::vector<int64_t> plain_counts;
  for (const auto& [value, count] : plaintext.counts) {
    plain_counts.push_back(count);
  }
  std::vector<int64_t> cipher_counts;
  for (const auto& [id, count] : ciphertext.counts) {
    cipher_counts.push_back(count);
  }

  // Exact-frequency matching: a value is cracked when its count is unique
  // among plaintext counts and exactly one ciphertext shows that count.
  // The match is only evidence when the transformation preserved total
  // occurrences — scaling (§5.2.1) deliberately breaks that premise, so
  // with mismatched totals a count coincidence proves nothing.
  if (ciphertext.TotalOccurrences() == plaintext.TotalOccurrences()) {
    for (int64_t pc : plain_counts) {
      const int64_t plain_same =
          std::count(plain_counts.begin(), plain_counts.end(), pc);
      const int64_t cipher_same =
          std::count(cipher_counts.begin(), cipher_counts.end(), pc);
      if (plain_same == 1 && cipher_same == 1) ++result.cracked;
    }
  }
  result.crack_rate =
      result.plaintext_values == 0
          ? 0.0
          : static_cast<double>(result.cracked) / result.plaintext_values;

  // Residual ambiguity.
  if (std::all_of(cipher_counts.begin(), cipher_counts.end(),
                  [](int64_t c) { return c == 1; }) &&
      static_cast<int64_t>(cipher_counts.size()) ==
          plaintext.TotalOccurrences() &&
      result.cracked == 0) {
    // Decoy view: unordered assignment — the multinomial of Theorem 4.1.
    std::vector<uint64_t> freqs(plain_counts.begin(), plain_counts.end());
    result.consistent_mappings = BigUInt::Multinomial(freqs);
  } else {
    // Order-preserving view (value index): consecutive groupings.
    result.consistent_mappings =
        CountOrderedPartitions(plain_counts, cipher_counts);
  }
  return result;
}

CiphertextHistogram NaiveDeterministicView(const ValueHistogram& plaintext) {
  CiphertextHistogram view;
  int64_t id = 0;
  for (const auto& [value, count] : plaintext.counts) {
    view.counts.emplace_back(id++, count);
  }
  return view;
}

CiphertextHistogram DecoyView(const ValueHistogram& plaintext) {
  CiphertextHistogram view;
  int64_t id = 0;
  for (const auto& [value, count] : plaintext.counts) {
    for (int64_t i = 0; i < count; ++i) view.counts.emplace_back(id++, 1);
  }
  return view;
}

int SizeAttackSurvivors(int64_t hosted_size,
                        const std::vector<int64_t>& candidate_sizes) {
  int survivors = 0;
  for (int64_t size : candidate_sizes) {
    if (size == hosted_size) ++survivors;
  }
  return survivors;
}

}  // namespace xcrypt
