#include "net/server.h"

#include "common/timer.h"
#include "net/channel.h"

namespace xcrypt {
namespace net {

namespace {
/// How often blocked threads re-check the stop flag.
constexpr double kStopPollSec = 0.1;
}  // namespace

Result<std::unique_ptr<NetServer>> NetServer::Serve(
    HostedBundle bundle, const std::string& host, uint16_t port,
    const NetServerOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  auto listener = Socket::Listen(host, port, options.backlog);
  if (!listener.ok()) return listener.status();

  std::unique_ptr<NetServer> server(new NetServer());
  server->bundle_ = std::move(bundle);
  server->engine_ = std::make_unique<ServerEngine>(&server->bundle_.database,
                                                   &server->bundle_.metadata);
  server->options_ = options;
  server->listener_ = std::move(*listener);
  auto bound = server->listener_.LocalPort();
  if (!bound.ok()) return bound.status();
  server->port_ = *bound;

  server->query_latency_ = server->metrics_.GetHistogram("query_us");
  server->naive_latency_ = server->metrics_.GetHistogram("naive_us");
  server->aggregate_latency_ = server->metrics_.GetHistogram("aggregate_us");
  server->ping_latency_ = server->metrics_.GetHistogram("ping_us");
  server->stats_latency_ = server->metrics_.GetHistogram("stats_us");

  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  for (int i = 0; i < options.num_threads; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Shutdown() {
  if (stop_.exchange(true)) return;  // idempotent
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  pending_.clear();  // connections never adopted by a worker just close
}

NetStats NetServer::stats() const {
  NetStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.aggregates_served = aggregates_served_.load(std::memory_order_relaxed);
  s.naive_served = naive_served_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.num_blocks = bundle_.database.blocks.size();
  s.ciphertext_bytes =
      static_cast<uint64_t>(bundle_.database.TotalCiphertextBytes());
  for (auto& [name, hist] : metrics_.Snapshot().histograms) {
    s.latency.emplace_back(std::move(name), hist);
  }
  return s;
}

obs::MetricsSnapshot NetServer::SnapshotMetrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  snap.counters.emplace_back(
      "queries_served", queries_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "aggregates_served",
      aggregates_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("naive_served",
                             naive_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("errors",
                             errors_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "connections_total",
      connections_total_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "connections_active",
      connections_active_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("bytes_received",
                             bytes_received_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("bytes_sent",
                             bytes_sent_.load(std::memory_order_relaxed));
  return snap;
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto conn = listener_.Accept(kStopPollSec);
    if (!conn.ok()) {
      // Accept failures are transient (peer vanished mid-handshake);
      // keep serving everyone else.
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!conn->valid()) continue;  // tick elapsed with no connection
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(std::move(*conn));
    }
    queue_cv_.notify_one();
  }
}

void NetServer::WorkerLoop() {
  while (true) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(std::move(conn));
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void NetServer::ServeConnection(Socket conn) {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto frame = ReadFrame(conn, options_.max_frame_bytes,
                           options_.io_timeout_sec, &stop_,
                           /*allow_idle=*/true);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kUnavailable) {
        // Framing violation: report it, then close — after a bad header
        // the byte stream can no longer be trusted to be frame-aligned.
        errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, frame.status());
      }
      // Unavailable covers the routine ends of a session (peer closed,
      // drain cancelled) as well as a mid-frame stall; close quietly.
      return;
    }
    bytes_received_.fetch_add(kFrameHeaderBytes + frame->payload.size(),
                              std::memory_order_relaxed);
    if (!HandleFrame(conn, *frame)) return;
  }
}

Status NetServer::SendError(Socket& conn, const Status& error) {
  const Bytes payload = EncodeError(error);
  bytes_sent_.fetch_add(kFrameHeaderBytes + payload.size(),
                        std::memory_order_relaxed);
  return WriteFrame(conn, MessageType::kError, payload);
}

bool NetServer::HandleFrame(Socket& conn, const Frame& frame) {
  Bytes reply;
  MessageType reply_type = MessageType::kError;

  switch (frame.type) {
    case MessageType::kPingRequest: {
      ping_latency_->Observe(0.0);
      reply_type = MessageType::kPingResponse;
      break;
    }
    case MessageType::kQueryRequest: {
      auto query = DecodeQueryRequest(frame.payload);
      if (!query.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return SendError(conn, query.status()).ok();
      }
      // Every served query is traced: the phase decomposition rides back
      // inside the response frame, and the total lands in the histogram.
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      auto result = engine_->Execute(query->query, &qctx,
                                     query->cached.empty() ? nullptr
                                                           : &query->cached);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return SendError(conn, result.status()).ok();
      }
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      query_latency_->Observe(watch.ElapsedMicros());
      reply = EncodeQueryResponse(result->response,
                                  result->stats.server_process_us,
                                  result->stats.server_phases);
      reply_type = MessageType::kQueryResponse;
      break;
    }
    case MessageType::kNaiveRequest: {
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      auto result = engine_->ExecuteNaive(&qctx);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return SendError(conn, result.status()).ok();
      }
      naive_served_.fetch_add(1, std::memory_order_relaxed);
      naive_latency_->Observe(watch.ElapsedMicros());
      reply = EncodeQueryResponse(result->response,
                                  result->stats.server_process_us,
                                  result->stats.server_phases);
      reply_type = MessageType::kQueryResponse;
      break;
    }
    case MessageType::kAggregateRequest: {
      auto request = DecodeAggregateRequest(frame.payload);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return SendError(conn, request.status()).ok();
      }
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      auto result = engine_->ExecuteAggregate(
          request->query, request->kind, request->index_token, &qctx,
          request->cached.empty() ? nullptr : &request->cached);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return SendError(conn, result.status()).ok();
      }
      aggregates_served_.fetch_add(1, std::memory_order_relaxed);
      aggregate_latency_->Observe(watch.ElapsedMicros());
      reply = EncodeAggregateResponse(result->response,
                                      result->stats.server_process_us,
                                      result->stats.server_phases);
      reply_type = MessageType::kAggregateResponse;
      break;
    }
    case MessageType::kStatsRequest: {
      Stopwatch watch;
      reply = EncodeStats(stats());
      stats_latency_->Observe(watch.ElapsedMicros());
      reply_type = MessageType::kStatsResponse;
      break;
    }
    default: {
      // A response type arriving at the server is a confused client;
      // answer with an error but keep the (still frame-aligned) session.
      errors_.fetch_add(1, std::memory_order_relaxed);
      return SendError(conn,
                       Status::InvalidArgument(
                           std::string("unexpected message type ") +
                           MessageTypeName(frame.type)))
          .ok();
    }
  }

  bytes_sent_.fetch_add(kFrameHeaderBytes + reply.size(),
                        std::memory_order_relaxed);
  return WriteFrame(conn, reply_type, reply).ok();
}

}  // namespace net
}  // namespace xcrypt
