#include "net/server.h"

#include "common/timer.h"
#include "net/channel.h"

namespace xcrypt {
namespace net {

namespace {
/// How often blocked threads re-check the stop flag.
constexpr double kStopPollSec = 0.1;
}  // namespace

Result<std::unique_ptr<NetServer>> NetServer::Serve(
    HostedBundle bundle, const std::string& host, uint16_t port,
    const NetServerOptions& options) {
  const std::string name = bundle.name.empty() ? "default" : bundle.name;
  auto catalog = std::make_unique<BundleCatalog>();
  XCRYPT_RETURN_NOT_OK(catalog->AddBundle(name, std::move(bundle)));
  NetServerOptions opts = options;
  if (opts.default_db.empty()) opts.default_db = name;
  return Start(std::move(catalog), host, port, opts);
}

Result<std::unique_ptr<NetServer>> NetServer::ServeCatalog(
    std::unique_ptr<BundleCatalog> catalog, const std::string& host,
    uint16_t port, const NetServerOptions& options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("catalog must not be null");
  }
  return Start(std::move(catalog), host, port, options);
}

Result<std::unique_ptr<NetServer>> NetServer::Start(
    std::unique_ptr<BundleCatalog> catalog, const std::string& host,
    uint16_t port, const NetServerOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.max_queued_queries < 0) {
    return Status::InvalidArgument("max_queued_queries must be >= 0");
  }
  auto listener = Socket::Listen(host, port, options.backlog);
  if (!listener.ok()) return listener.status();

  std::unique_ptr<NetServer> server(new NetServer());
  server->catalog_ = std::move(catalog);
  // Engines the catalog builds from here on report plan-cache hit/miss
  // into this daemon's registry (visible through the stats op).
  server->catalog_->SetMetricsRegistry(&server->metrics_);
  server->options_ = options;
  server->listener_ = std::move(*listener);
  auto bound = server->listener_.LocalPort();
  if (!bound.ok()) return bound.status();
  server->port_ = *bound;

  server->query_latency_ = server->metrics_.GetHistogram("query_us");
  server->naive_latency_ = server->metrics_.GetHistogram("naive_us");
  server->aggregate_latency_ = server->metrics_.GetHistogram("aggregate_us");
  server->ping_latency_ = server->metrics_.GetHistogram("ping_us");
  server->stats_latency_ = server->metrics_.GetHistogram("stats_us");
  server->update_latency_ = server->metrics_.GetHistogram("update_us");
  server->queue_depth_ = server->metrics_.GetGauge("queue_depth");

  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  for (int i = 0; i < options.num_threads; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Shutdown() {
  if (stop_.exchange(true)) return;  // idempotent
  queue_cv_.notify_all();
  admit_cv_.notify_all();  // queued requests drain as Unavailable sheds
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  pending_.clear();  // connections never adopted by a worker just close
}

Result<std::shared_ptr<const ResidentDb>> NetServer::ResolveDb(
    const std::string& db) const {
  const std::string& name = db.empty() ? options_.default_db : db;
  if (name.empty()) {
    return Status::InvalidArgument(
        "request names no database and the daemon has no default");
  }
  auto resident = catalog_->Get(name);
  if (resident.ok()) {
    metrics_.GetCounter("db." + name + ".queries")->Add(1);
  }
  return resident;
}

bool NetServer::AdmitQuery() {
  if (options_.max_inflight_queries <= 0) return true;
  std::unique_lock<std::mutex> lock(admit_mu_);
  if (inflight_ < options_.max_inflight_queries) {
    ++inflight_;
    return true;
  }
  if (waiting_ >= options_.max_queued_queries) return false;  // shed
  ++waiting_;
  queue_depth_->Add(1);
  admit_cv_.wait(lock, [this] {
    return stop_.load(std::memory_order_relaxed) ||
           inflight_ < options_.max_inflight_queries;
  });
  --waiting_;
  queue_depth_->Sub(1);
  if (stop_.load(std::memory_order_relaxed)) return false;
  ++inflight_;
  return true;
}

void NetServer::ReleaseQuery() {
  if (options_.max_inflight_queries <= 0) return;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    --inflight_;
  }
  admit_cv_.notify_one();
}

NetStats NetServer::stats(const std::string& db) const {
  NetStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.aggregates_served = aggregates_served_.load(std::memory_order_relaxed);
  s.naive_served = naive_served_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    s.queue_depth = static_cast<uint64_t>(waiting_);
  }
  const std::string& name = db.empty() ? options_.default_db : db;
  if (!name.empty()) {
    auto resident = catalog_->Get(name);
    if (resident.ok()) {
      s.database = name;
      s.num_blocks = (*resident)->bundle().database.blocks.size();
      s.ciphertext_bytes = static_cast<uint64_t>(
          (*resident)->bundle().database.TotalCiphertextBytes());
      s.db_generation = (*resident)->bundle().generation;
    }
  }
  for (auto& [hist_name, hist] : metrics_.Snapshot().histograms) {
    s.latency.emplace_back(std::move(hist_name), hist);
  }
  return s;
}

obs::MetricsSnapshot NetServer::SnapshotMetrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  snap.counters.emplace_back(
      "queries_served", queries_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "aggregates_served",
      aggregates_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("naive_served",
                             naive_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("errors",
                             errors_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "connections_total",
      connections_total_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "connections_active",
      connections_active_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("bytes_received",
                             bytes_received_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("bytes_sent",
                             bytes_sent_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("queries_shed",
                             queries_shed_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "updates_applied", updates_applied_.load(std::memory_order_relaxed));
  return snap;
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto conn = listener_.Accept(kStopPollSec);
    if (!conn.ok()) {
      // Accept failures are transient (peer vanished mid-handshake);
      // keep serving everyone else.
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!conn->valid()) continue;  // tick elapsed with no connection
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(std::move(*conn));
    }
    queue_cv_.notify_one();
  }
}

void NetServer::WorkerLoop() {
  while (true) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(std::move(conn));
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void NetServer::ServeConnection(Socket conn) {
  // Invalidation push state for this session. Push only starts once the
  // peer has spoken v5 — older clients would reject the unknown frames.
  uint64_t inv_seen = inv_seq_.load(std::memory_order_acquire);
  uint8_t session_version = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    const bool push = session_version >= 5;
    bool woke = false;
    auto frame = ReadFrame(conn, options_.max_frame_bytes,
                           options_.io_timeout_sec, &stop_,
                           /*allow_idle=*/true, push ? &inv_seq_ : nullptr,
                           inv_seen, &woke);
    if (!frame.ok()) {
      if (woke) {
        // A delta landed while this session idled between requests: push
        // the invalidation events, then go back to waiting.
        if (!FlushInvalidations(conn, &inv_seen)) return;
        continue;
      }
      if (frame.status().code() != StatusCode::kUnavailable) {
        // Framing violation: report it, then close — after a bad header
        // the byte stream can no longer be trusted to be frame-aligned.
        errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, frame.status(), kWireVersion);
      }
      // Unavailable covers the routine ends of a session (peer closed,
      // drain cancelled) as well as a mid-frame stall; close quietly.
      return;
    }
    session_version = frame->version;
    bytes_received_.fetch_add(kFrameHeaderBytes + frame->payload.size(),
                              std::memory_order_relaxed);
    if (!HandleFrame(conn, *frame)) return;
    if (session_version >= 5 && !FlushInvalidations(conn, &inv_seen)) return;
  }
}

void NetServer::RecordInvalidation(InvalidationEventMsg event) {
  std::lock_guard<std::mutex> lock(inv_mu_);
  PendingInvalidation entry;
  entry.seq = inv_seq_.load(std::memory_order_relaxed) + 1;
  entry.event = std::move(event);
  inv_log_.push_back(std::move(entry));
  while (options_.max_invalidation_log > 0 &&
         inv_log_.size() > static_cast<size_t>(options_.max_invalidation_log)) {
    inv_log_.pop_front();
  }
  // Release so a session thread that wakes on the counter sees the log
  // entry it advertises.
  inv_seq_.fetch_add(1, std::memory_order_release);
}

bool NetServer::FlushInvalidations(Socket& conn, uint64_t* inv_seen) {
  std::vector<InvalidationEventMsg> events;
  uint64_t newest = 0;
  {
    std::lock_guard<std::mutex> lock(inv_mu_);
    newest = inv_seq_.load(std::memory_order_relaxed);
    if (newest == *inv_seen) return true;
    if (inv_log_.empty() || inv_log_.front().seq > *inv_seen + 1) {
      // The bounded log no longer reaches back this far: precise lists
      // for the missed events are gone, so tell the client to drop
      // everything it holds.
      InvalidationEventMsg drop_all;
      drop_all.drop_all = true;
      events.push_back(std::move(drop_all));
    } else {
      for (const PendingInvalidation& entry : inv_log_) {
        if (entry.seq > *inv_seen) events.push_back(entry.event);
      }
    }
  }
  *inv_seen = newest;
  for (const InvalidationEventMsg& event : events) {
    const Bytes payload = EncodeInvalidationEvent(event);
    bytes_sent_.fetch_add(kFrameHeaderBytes + payload.size(),
                          std::memory_order_relaxed);
    if (!WriteFrame(conn, MessageType::kInvalidationEvent, payload,
                    kWireVersion)
             .ok()) {
      return false;
    }
  }
  return true;
}

Status NetServer::SendError(Socket& conn, const Status& error,
                            uint8_t version, double retry_after_ms) {
  const Bytes payload = EncodeError(error, retry_after_ms, version);
  bytes_sent_.fetch_add(kFrameHeaderBytes + payload.size(),
                        std::memory_order_relaxed);
  return WriteFrame(conn, MessageType::kError, payload, version);
}

bool NetServer::HandleFrame(Socket& conn, const Frame& frame) {
  Bytes reply;
  MessageType reply_type = MessageType::kError;
  const uint8_t version = frame.version;

  // The admission gate covers the three query-class request types plus
  // updates (a delta apply clones and rebuilds an engine — heavier than
  // most queries); pings and stats stay cheap and ungated so a saturated
  // daemon can still be health-checked and observed.
  const bool gated = frame.type == MessageType::kQueryRequest ||
                     frame.type == MessageType::kNaiveRequest ||
                     frame.type == MessageType::kAggregateRequest ||
                     frame.type == MessageType::kUpdateRequest;
  if (gated && !AdmitQuery()) {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    return SendError(conn,
                     Status::Unavailable("daemon over capacity, retry later"),
                     version, options_.shed_backoff_ms)
        .ok();
  }

  switch (frame.type) {
    case MessageType::kPingRequest: {
      ping_latency_->Observe(0.0);
      reply_type = MessageType::kPingResponse;
      break;
    }
    case MessageType::kQueryRequest: {
      auto query = DecodeQueryRequest(frame.payload, version);
      if (!query.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, query.status(), version).ok();
      }
      auto db = ResolveDb(query->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, db.status(), version).ok();
      }
      // Every served query is traced: the phase decomposition rides back
      // inside the response frame, and the total lands in the histogram.
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      ExecOptions exec;
      exec.ctx = &qctx;
      exec.cached_blocks = query->cached.empty() ? nullptr : &query->cached;
      auto result = (*db)->engine().Execute(query->query, exec);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, result.status(), version).ok();
      }
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      query_latency_->Observe(watch.ElapsedMicros());
      reply = EncodeQueryResponse(result->response,
                                  result->stats.server_process_us,
                                  result->stats.server_phases);
      reply_type = MessageType::kQueryResponse;
      break;
    }
    case MessageType::kNaiveRequest: {
      auto request = DecodeNaiveRequest(frame.payload, version);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, request.status(), version).ok();
      }
      auto db = ResolveDb(request->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, db.status(), version).ok();
      }
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      ExecOptions exec;
      exec.ctx = &qctx;
      auto result = (*db)->engine().ExecuteNaive(exec);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, result.status(), version).ok();
      }
      naive_served_.fetch_add(1, std::memory_order_relaxed);
      naive_latency_->Observe(watch.ElapsedMicros());
      reply = EncodeQueryResponse(result->response,
                                  result->stats.server_process_us,
                                  result->stats.server_phases);
      reply_type = MessageType::kQueryResponse;
      break;
    }
    case MessageType::kAggregateRequest: {
      auto request = DecodeAggregateRequest(frame.payload, version);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, request.status(), version).ok();
      }
      auto db = ResolveDb(request->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, db.status(), version).ok();
      }
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      ExecOptions exec;
      exec.ctx = &qctx;
      exec.cached_blocks =
          request->cached.empty() ? nullptr : &request->cached;
      auto result = (*db)->engine().ExecuteAggregate(
          request->query, request->kind, request->index_token, exec);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, result.status(), version).ok();
      }
      aggregates_served_.fetch_add(1, std::memory_order_relaxed);
      aggregate_latency_->Observe(watch.ElapsedMicros());
      reply = EncodeAggregateResponse(result->response,
                                      result->stats.server_process_us,
                                      result->stats.server_phases);
      reply_type = MessageType::kAggregateResponse;
      break;
    }
    case MessageType::kUpdateRequest: {
      if (!options_.accept_updates) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn,
                         Status::Unsupported(
                             "daemon does not accept updates (restart with "
                             "--allow-updates)"),
                         version)
            .ok();
      }
      auto request = DecodeUpdateRequest(frame.payload);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, request.status(), version).ok();
      }
      auto delta = DeserializeDelta(request->delta);
      if (!delta.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, delta.status(), version).ok();
      }
      const std::string db =
          request->db.empty() ? options_.default_db : request->db;
      if (db.empty()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn,
                         Status::InvalidArgument(
                             "update names no database and the daemon has "
                             "no default"),
                         version)
            .ok();
      }
      Stopwatch watch;
      auto generation = catalog_->ApplyDelta(db, *delta);
      if (!generation.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        return SendError(conn, generation.status(), version).ok();
      }
      updates_applied_.fetch_add(1, std::memory_order_relaxed);
      update_latency_->Observe(watch.ElapsedMicros());
      metrics_.GetCounter("db." + db + ".updates")->Add(1);

      // Tell every connected v5 session (this one included — its flush
      // runs right after the reply) which cached blocks just went stale.
      InvalidationEventMsg event;
      event.db = db;
      event.db_generation = *generation;
      for (const DeltaBlockPut& put : delta->block_puts) {
        BlockAdvert advert;
        advert.id = put.id;
        advert.generation = put.generation;
        event.blocks.push_back(advert);
      }
      for (const auto& [id, block_generation] : delta->block_tombstones) {
        BlockAdvert advert;
        advert.id = id;
        advert.generation = block_generation;
        event.blocks.push_back(advert);
      }
      RecordInvalidation(std::move(event));

      UpdateResponseMsg response;
      response.generation = *generation;
      reply = EncodeUpdateResponse(response);
      reply_type = MessageType::kUpdateResponse;
      break;
    }
    case MessageType::kStatsRequest: {
      Stopwatch watch;
      auto request = DecodeStatsRequest(frame.payload, version);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return SendError(conn, request.status(), version).ok();
      }
      reply = EncodeStats(stats(request->db), version);
      stats_latency_->Observe(watch.ElapsedMicros());
      reply_type = MessageType::kStatsResponse;
      break;
    }
    default: {
      // A response type arriving at the server is a confused client;
      // answer with an error but keep the (still frame-aligned) session.
      errors_.fetch_add(1, std::memory_order_relaxed);
      return SendError(conn,
                       Status::InvalidArgument(
                           std::string("unexpected message type ") +
                           MessageTypeName(frame.type)),
                       version)
          .ok();
    }
  }

  if (gated) ReleaseQuery();
  bytes_sent_.fetch_add(kFrameHeaderBytes + reply.size(),
                        std::memory_order_relaxed);
  return WriteFrame(conn, reply_type, reply, version).ok();
}

}  // namespace net
}  // namespace xcrypt
