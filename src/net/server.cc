#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/timer.h"

namespace xcrypt {
namespace net {

namespace {
/// How often blocked threads re-check the stop flag.
constexpr double kStopPollSec = 0.1;
/// epoll_wait tick, so I/O threads notice the stop flag promptly.
constexpr int kEpollTickMs = 100;
/// How often an I/O thread sweeps its connections for timeouts.
constexpr auto kSweepInterval = std::chrono::milliseconds(250);
/// Bytes pulled off a socket per recv call.
constexpr size_t kReadChunk = 64 * 1024;
/// Read budget per connection per loop round, so one firehose connection
/// cannot starve its I/O thread's other sockets.
constexpr int kMaxReadChunksPerRound = 16;
/// iovec entries per sendmsg call.
constexpr int kMaxIov = 64;

using Clock = std::chrono::steady_clock;

Clock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

/// One connection's reactor state. Everything above `mu` is touched only
/// by the owning I/O thread; the fields under `mu` are shared with the
/// worker pool (reply enqueue, pipelining bookkeeping).
struct NetServer::Conn {
  Socket sock;
  IoThread* io = nullptr;

  Bytes in;           ///< unparsed input bytes
  size_t in_off = 0;  ///< consumed prefix of `in`
  /// Wire version of the latest parsed request (0 until the peer speaks).
  /// Governs reply framing for pushes, pipelining depth, and whether the
  /// session is eligible for invalidation events (≥ 5).
  uint8_t version = 0;
  uint64_t inv_seen = 0;
  std::deque<Frame> parsed;  ///< complete frames awaiting dispatch
  bool read_closed = false;  ///< EOF or broken framing: no more reads
  uint32_t interest = 0;     ///< currently registered epoll mask
  Clock::time_point last_activity;
  Clock::time_point frame_start;  ///< when the current partial frame began
  bool mid_frame = false;

  std::mutex mu;
  std::deque<Bytes> out;  ///< pending output segments (writev queue)
  size_t out_off = 0;     ///< bytes of out.front() already on the wire
  int inflight = 0;          ///< dispatched requests awaiting replies
  int inflight_legacy = 0;   ///< of those, pre-v6 (strictly serial) ones
  bool close_after_flush = false;
  bool closed = false;  ///< fd closed; late replies are dropped
};

/// One epoll loop's state. `conns` belongs to the loop thread alone; the
/// fields under `mu` are the handoff surface (acceptor → inbox, workers →
/// ready, updates → inv_pending) drained once per loop round.
struct NetServer::IoThread {
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  Clock::time_point last_sweep;

  std::mutex mu;
  std::vector<Socket> inbox;
  std::vector<std::shared_ptr<Conn>> ready;
  bool inv_pending = false;

  ~IoThread() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (event_fd >= 0) ::close(event_fd);
  }
};

Status NetServerOptions::Validate() const {
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (io_threads < 1) {
    return Status::InvalidArgument("io_threads must be >= 1");
  }
  if (backlog < 1) {
    return Status::InvalidArgument("backlog must be >= 1");
  }
  if (!(io_timeout_sec > 0)) {  // also rejects NaN
    return Status::InvalidArgument("io_timeout_sec must be > 0");
  }
  if (!(idle_timeout_sec >= 0)) {
    return Status::InvalidArgument("idle_timeout_sec must be >= 0");
  }
  if (max_frame_bytes == 0) {
    return Status::InvalidArgument("max_frame_bytes must be > 0");
  }
  if (max_inflight_queries < 0) {
    return Status::InvalidArgument("max_inflight_queries must be >= 0");
  }
  if (max_queued_queries < 0) {
    return Status::InvalidArgument("max_queued_queries must be >= 0");
  }
  if (!(shed_backoff_ms >= 0)) {
    return Status::InvalidArgument("shed_backoff_ms must be >= 0");
  }
  if (max_invalidation_log < 0) {
    return Status::InvalidArgument("max_invalidation_log must be >= 0");
  }
  if (max_pipeline_depth < 1) {
    return Status::InvalidArgument("max_pipeline_depth must be >= 1");
  }
  return Status::Ok();
}

ServerConfig ServerConfig::ForBundle(HostedBundle bundle,
                                     const std::string& host, uint16_t port,
                                     NetServerOptions options) {
  ServerConfig config;
  config.host = host;
  config.port = port;
  config.bundle = std::move(bundle);
  config.options = std::move(options);
  return config;
}

ServerConfig ServerConfig::ForCatalog(std::unique_ptr<BundleCatalog> catalog,
                                      const std::string& host, uint16_t port,
                                      NetServerOptions options) {
  ServerConfig config;
  config.host = host;
  config.port = port;
  config.catalog = std::move(catalog);
  config.options = std::move(options);
  return config;
}

Result<std::unique_ptr<NetServer>> NetServer::Serve(ServerConfig config) {
  XCRYPT_RETURN_NOT_OK(config.options.Validate());
  if (config.bundle.has_value() == (config.catalog != nullptr)) {
    return Status::InvalidArgument(
        "ServerConfig must set exactly one of bundle or catalog");
  }
  std::unique_ptr<BundleCatalog> catalog;
  NetServerOptions opts = config.options;
  if (config.bundle.has_value()) {
    const std::string name =
        config.bundle->name.empty() ? "default" : config.bundle->name;
    catalog = std::make_unique<BundleCatalog>();
    XCRYPT_RETURN_NOT_OK(catalog->AddBundle(name, std::move(*config.bundle)));
    if (opts.default_db.empty()) opts.default_db = name;
  } else {
    catalog = std::move(config.catalog);
  }
  return Start(std::move(catalog), config.host, config.port, opts);
}

Result<std::unique_ptr<NetServer>> NetServer::Start(
    std::unique_ptr<BundleCatalog> catalog, const std::string& host,
    uint16_t port, const NetServerOptions& options) {
  auto listener = Socket::Listen(host, port, options.backlog);
  if (!listener.ok()) return listener.status();

  std::unique_ptr<NetServer> server(new NetServer());
  server->catalog_ = std::move(catalog);
  // Engines the catalog builds from here on report plan-cache hit/miss
  // into this daemon's registry (visible through the stats op).
  server->catalog_->SetMetricsRegistry(&server->metrics_);
  server->options_ = options;
  server->listener_ = std::move(*listener);
  auto bound = server->listener_.LocalPort();
  if (!bound.ok()) return bound.status();
  server->port_ = *bound;

  server->query_latency_ = server->metrics_.GetHistogram("query_us");
  server->naive_latency_ = server->metrics_.GetHistogram("naive_us");
  server->aggregate_latency_ = server->metrics_.GetHistogram("aggregate_us");
  server->ping_latency_ = server->metrics_.GetHistogram("ping_us");
  server->stats_latency_ = server->metrics_.GetHistogram("stats_us");
  server->update_latency_ = server->metrics_.GetHistogram("update_us");
  server->queue_depth_ = server->metrics_.GetGauge("queue_depth");

  for (int i = 0; i < options.io_threads; ++i) {
    auto io = std::make_unique<IoThread>();
    io->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    io->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (io->epoll_fd < 0 || io->event_fd < 0) {
      return Status::Internal("cannot create epoll/eventfd for I/O thread");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = io->event_fd;
    if (::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->event_fd, &ev) != 0) {
      return Status::Internal("cannot register eventfd with epoll");
    }
    io->last_sweep = Clock::now();
    server->io_.push_back(std::move(io));
  }
  for (auto& io : server->io_) {
    io->thread = std::thread([s = server.get(), t = io.get()] { s->IoLoop(t); });
  }
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  for (int i = 0; i < options.num_threads; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Shutdown() {
  if (stop_.exchange(true)) return;  // idempotent
  queue_cv_.notify_all();
  admit_cv_.notify_all();  // queued requests drain as Unavailable sheds
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // Workers drain every dispatched request first, so each one's reply is
  // queued before the I/O threads run their final flush.
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  io_stop_.store(true, std::memory_order_release);
  for (auto& io : io_) SignalIo(io.get());
  for (auto& io : io_) {
    if (io->thread.joinable()) io->thread.join();
  }
}

void NetServer::SignalIo(IoThread* io) {
  const uint64_t one = 1;
  // The eventfd is nonblocking; a full counter still wakes the loop.
  (void)!::write(io->event_fd, &one, sizeof(one));
}

Result<std::shared_ptr<const ResidentDb>> NetServer::ResolveDb(
    const std::string& db) const {
  const std::string& name = db.empty() ? options_.default_db : db;
  if (name.empty()) {
    return Status::InvalidArgument(
        "request names no database and the daemon has no default");
  }
  auto resident = catalog_->Get(name);
  if (resident.ok()) {
    metrics_.GetCounter("db." + name + ".queries")->Add(1);
  }
  return resident;
}

bool NetServer::AdmitQuery() {
  if (options_.max_inflight_queries <= 0) return true;
  std::unique_lock<std::mutex> lock(admit_mu_);
  if (inflight_ < options_.max_inflight_queries) {
    ++inflight_;
    return true;
  }
  if (waiting_ >= options_.max_queued_queries) return false;  // shed
  ++waiting_;
  queue_depth_->Add(1);
  admit_cv_.wait(lock, [this] {
    return stop_.load(std::memory_order_relaxed) ||
           inflight_ < options_.max_inflight_queries;
  });
  --waiting_;
  queue_depth_->Sub(1);
  if (stop_.load(std::memory_order_relaxed)) return false;
  ++inflight_;
  return true;
}

void NetServer::ReleaseQuery() {
  if (options_.max_inflight_queries <= 0) return;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    --inflight_;
  }
  admit_cv_.notify_one();
}

NetStats NetServer::stats(const NetCallOptions& opts) const {
  NetStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.aggregates_served = aggregates_served_.load(std::memory_order_relaxed);
  s.naive_served = naive_served_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    s.queue_depth = static_cast<uint64_t>(waiting_);
  }
  const std::string& name = opts.db.empty() ? options_.default_db : opts.db;
  if (!name.empty()) {
    auto resident = catalog_->Get(name);
    if (resident.ok()) {
      s.database = name;
      s.num_blocks = (*resident)->num_blocks();
      s.ciphertext_bytes =
          static_cast<uint64_t>((*resident)->ciphertext_bytes());
      s.db_generation = (*resident)->owner_generation();
    }
  }
  for (auto& [hist_name, hist] : metrics_.Snapshot().histograms) {
    s.latency.emplace_back(std::move(hist_name), hist);
  }
  return s;
}

obs::MetricsSnapshot NetServer::SnapshotMetrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  snap.counters.emplace_back(
      "queries_served", queries_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "aggregates_served",
      aggregates_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("naive_served",
                             naive_served_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("errors",
                             errors_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "connections_total",
      connections_total_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "connections_active",
      connections_active_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("bytes_received",
                             bytes_received_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("bytes_sent",
                             bytes_sent_.load(std::memory_order_relaxed));
  snap.counters.emplace_back("queries_shed",
                             queries_shed_.load(std::memory_order_relaxed));
  snap.counters.emplace_back(
      "updates_applied", updates_applied_.load(std::memory_order_relaxed));
  return snap;
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto conn = listener_.Accept(kStopPollSec);
    if (!conn.ok()) {
      // Accept failures are transient (peer vanished mid-handshake);
      // keep serving everyone else.
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!conn->valid()) continue;  // tick elapsed with no connection
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    IoThread* io =
        io_[next_io_.fetch_add(1, std::memory_order_relaxed) % io_.size()]
            .get();
    {
      std::lock_guard<std::mutex> lock(io->mu);
      io->inbox.push_back(std::move(*conn));
    }
    SignalIo(io);
  }
}

// --- reactor ------------------------------------------------------------

void NetServer::IoLoop(IoThread* io) {
  epoll_event events[128];
  while (!io_stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(io->epoll_fd, events,
                               static_cast<int>(std::size(events)),
                               kEpollTickMs);
    if (n < 0 && errno != EINTR) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == io->event_fd) {
        uint64_t drained = 0;
        (void)!::read(io->event_fd, &drained, sizeof(drained));
        continue;
      }
      auto it = io->conns.find(events[i].data.fd);
      if (it == io->conns.end()) continue;  // closed earlier this round
      ProcessConn(io, it->second);
    }

    // Drain the handoff surface: freshly accepted sockets, connections
    // with worker activity, and invalidation pushes.
    std::vector<Socket> inbox;
    std::vector<std::shared_ptr<Conn>> ready;
    bool inv = false;
    {
      std::lock_guard<std::mutex> lock(io->mu);
      inbox.swap(io->inbox);
      ready.swap(io->ready);
      inv = io->inv_pending;
      io->inv_pending = false;
    }
    for (Socket& sock : inbox) RegisterConn(io, std::move(sock));
    for (const auto& conn : ready) ProcessConn(io, conn);
    if (inv) {
      std::vector<std::shared_ptr<Conn>> snapshot;
      snapshot.reserve(io->conns.size());
      for (const auto& [fd, conn] : io->conns) {
        if (conn->version >= 5) snapshot.push_back(conn);
      }
      for (const auto& conn : snapshot) ProcessConn(io, conn);
    }

    const auto now = Clock::now();
    if (now - io->last_sweep >= kSweepInterval) {
      io->last_sweep = now;
      SweepConns(io);
    }
  }

  // Final drain: the workers have exited, so every reply that will ever
  // exist is queued. Flush what the wire will take within the I/O
  // timeout, then close everything.
  std::vector<std::shared_ptr<Conn>> conns;
  conns.reserve(io->conns.size());
  for (const auto& [fd, conn] : io->conns) conns.push_back(conn);
  const auto deadline = Clock::now() + SecondsToDuration(options_.io_timeout_sec);
  bool pending = true;
  while (pending && Clock::now() < deadline) {
    pending = false;
    for (const auto& conn : conns) {
      if (conn->closed) continue;
      bool empty;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        empty = conn->out.empty();
      }
      if (empty) continue;
      if (!FlushOutput(conn.get())) {
        CloseConn(io, conn);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->out.empty()) pending = true;
      }
    }
    if (pending) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (const auto& conn : conns) CloseConn(io, conn);
}

void NetServer::RegisterConn(IoThread* io, Socket sock) {
  if (stop_.load(std::memory_order_relaxed)) return;  // draining: drop it
  if (!sock.SetNonBlocking(true).ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto conn = std::make_shared<Conn>();
  conn->sock = std::move(sock);
  conn->io = io;
  // New sessions start past the log: events recorded before a client
  // connected describe blocks it cannot be caching yet.
  conn->inv_seen = inv_seq_.load(std::memory_order_acquire);
  conn->last_activity = Clock::now();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->sock.fd();
  if (::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, conn->sock.fd(), &ev) != 0) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return;  // Socket closes via RAII
  }
  conn->interest = EPOLLIN;
  io->conns.emplace(conn->sock.fd(), conn);
  connections_active_.fetch_add(1, std::memory_order_relaxed);
}

void NetServer::ProcessConn(IoThread* io, const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  if (!conn->read_closed && !stop_.load(std::memory_order_relaxed)) {
    if (!ReadInput(io, conn)) return;  // hard error: connection closed
    ParseFrames(conn);
  }
  DispatchFrames(conn);
  if (!FlushOutput(conn.get())) {
    CloseConn(io, conn);
    return;
  }
  if (conn->version >= 5 &&
      conn->inv_seen < inv_seq_.load(std::memory_order_acquire)) {
    FlushConnInvalidations(conn.get());
    if (!FlushOutput(conn.get())) {
      CloseConn(io, conn);
      return;
    }
  }
  bool done;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    done = (conn->read_closed || conn->close_after_flush) &&
           conn->inflight == 0 && conn->out.empty() && conn->parsed.empty();
  }
  if (done) {
    CloseConn(io, conn);
    return;
  }
  UpdateInterest(io, conn.get());
}

bool NetServer::ReadInput(IoThread* io, const std::shared_ptr<Conn>& conn) {
  // Backpressure: a full parsed backlog means dispatch is blocked on the
  // pipeline depth (or a serial legacy request) — leave further bytes in
  // the kernel buffer so TCP flow control reaches the peer.
  int limit = conn->version >= 6 ? options_.max_pipeline_depth : 1;
  if (static_cast<int>(conn->parsed.size()) >= limit) return true;
  for (int round = 0; round < kMaxReadChunksPerRound; ++round) {
    const size_t old_size = conn->in.size();
    conn->in.resize(old_size + kReadChunk);
    const ssize_t rc =
        ::recv(conn->sock.fd(), conn->in.data() + old_size, kReadChunk, 0);
    if (rc > 0) {
      conn->in.resize(old_size + static_cast<size_t>(rc));
      conn->last_activity = Clock::now();
      if (static_cast<size_t>(rc) < kReadChunk) break;  // socket drained
      continue;
    }
    conn->in.resize(old_size);
    if (rc == 0) {
      // EOF. Pending requests still get served and flushed; the drained-
      // close check in ProcessConn reaps the connection afterwards.
      conn->read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(io, conn);
    return false;
  }
  return true;
}

bool NetServer::ParseFrames(const std::shared_ptr<Conn>& conn) {
  while (true) {
    const int limit = conn->version >= 6 ? options_.max_pipeline_depth : 1;
    if (static_cast<int>(conn->parsed.size()) >= limit) break;
    const size_t avail = conn->in.size() - conn->in_off;
    if (avail < kFrameHeaderBytes) {
      if (avail > 0 && !conn->mid_frame) {
        conn->mid_frame = true;
        conn->frame_start = Clock::now();
      }
      break;
    }
    uint32_t payload_length = 0;
    auto frame = DecodeFrameHeader(conn->in.data() + conn->in_off,
                                   options_.max_frame_bytes, &payload_length);
    if (!frame.ok()) {
      // Framing violation: report it, then close once the error flushes —
      // after a bad header the stream is no longer frame-aligned.
      errors_.fetch_add(1, std::memory_order_relaxed);
      const uint8_t version =
          conn->version >= kMinWireVersion ? conn->version : kWireVersion;
      FrameParts parts =
          EncodeFrameParts(MessageType::kError,
                           {EncodeError(frame.status(), 0.0, version)},
                           version, 0);
      bytes_sent_.fetch_add(FramePartsBytes(parts), std::memory_order_relaxed);
      conn->read_closed = true;
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
      for (Bytes& part : parts) {
        if (!part.empty()) conn->out.push_back(std::move(part));
      }
      return false;
    }
    const size_t header_bytes = FrameHeaderBytes(frame->version);
    if (avail < header_bytes + payload_length) {
      if (!conn->mid_frame) {
        conn->mid_frame = true;
        conn->frame_start = Clock::now();
      }
      break;
    }
    const uint8_t* base = conn->in.data() + conn->in_off;
    if (frame->version >= 6) {
      frame->frame_id = DecodeFrameId(base + kFrameHeaderBytes);
    }
    frame->payload.assign(base + header_bytes,
                          base + header_bytes + payload_length);
    conn->in_off += header_bytes + payload_length;
    conn->mid_frame = false;
    conn->version = frame->version;
    bytes_received_.fetch_add(header_bytes + payload_length,
                              std::memory_order_relaxed);
    conn->parsed.push_back(std::move(*frame));
  }
  // Compact the consumed prefix once it is worth the memmove.
  if (conn->in_off == conn->in.size()) {
    conn->in.clear();
    conn->in_off = 0;
  } else if (conn->in_off > kReadChunk) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(conn->in_off));
    conn->in_off = 0;
  }
  return true;
}

void NetServer::DispatchFrames(const std::shared_ptr<Conn>& conn) {
  if (stop_.load(std::memory_order_relaxed)) return;
  while (!conn->parsed.empty()) {
    const uint8_t version = conn->parsed.front().version;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (version < 6) {
        // Legacy sessions are strictly serial: one request at a time, in
        // arrival order, exactly like the pre-reactor daemon.
        if (conn->inflight > 0) return;
      } else {
        // v6 frames pipeline, but never overtake an in-flight legacy
        // frame (a hostile client mixing versions must not see replies
        // reorder on an id-less frame).
        if (conn->inflight_legacy > 0) return;
        if (conn->inflight >= options_.max_pipeline_depth) return;
      }
      ++conn->inflight;
      if (version < 6) ++conn->inflight_legacy;
    }
    Task task;
    task.conn = conn;
    task.frame = std::move(conn->parsed.front());
    conn->parsed.pop_front();
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      tasks_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
  }
}

bool NetServer::FlushOutput(Conn* conn) {
  if (conn->closed) return true;
  std::lock_guard<std::mutex> lock(conn->mu);
  while (!conn->out.empty()) {
    iovec iov[kMaxIov];
    int n = 0;
    size_t off = conn->out_off;
    for (auto it = conn->out.begin(); it != conn->out.end() && n < kMaxIov;
         ++it) {
      iov[n].iov_base = it->data() + off;
      iov[n].iov_len = it->size() - off;
      off = 0;
      ++n;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(n);
    const ssize_t rc = ::sendmsg(conn->sock.fd(), &msg, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;  // UpdateInterest arms EPOLLOUT for the remainder
      }
      return false;  // peer gone
    }
    conn->last_activity = Clock::now();
    size_t left = static_cast<size_t>(rc);
    while (left > 0) {
      const size_t head = conn->out.front().size() - conn->out_off;
      if (left >= head) {
        left -= head;
        conn->out.pop_front();
        conn->out_off = 0;
      } else {
        conn->out_off += left;
        left = 0;
      }
    }
  }
  return true;
}

void NetServer::UpdateInterest(IoThread* io, Conn* conn) {
  int inflight;
  bool out_empty;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    inflight = conn->inflight;
    out_empty = conn->out.empty();
  }
  const int limit = conn->version >= 6 ? options_.max_pipeline_depth : 1;
  const bool paused =
      static_cast<int>(conn->parsed.size()) + inflight >= limit;
  uint32_t want = 0;
  if (!conn->read_closed && !paused &&
      !stop_.load(std::memory_order_relaxed)) {
    want |= EPOLLIN;
  }
  if (!out_empty) want |= EPOLLOUT;
  if (want == conn->interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->sock.fd();
  ::epoll_ctl(io->epoll_fd, EPOLL_CTL_MOD, conn->sock.fd(), &ev);
  conn->interest = want;
}

void NetServer::CloseConn(IoThread* io, std::shared_ptr<Conn> conn) {
  if (conn->closed) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    conn->out.clear();
    conn->out_off = 0;
  }
  const int fd = conn->sock.fd();
  ::epoll_ctl(io->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  io->conns.erase(fd);
  conn->sock.Close();
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

void NetServer::SweepConns(IoThread* io) {
  const auto now = Clock::now();
  const auto io_timeout = SecondsToDuration(options_.io_timeout_sec);
  std::vector<std::shared_ptr<Conn>> doomed;
  for (const auto& [fd, conn] : io->conns) {
    int inflight;
    bool out_empty;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      inflight = conn->inflight;
      out_empty = conn->out.empty();
    }
    if (conn->mid_frame && now - conn->frame_start > io_timeout) {
      // Stalled mid-frame (the old RecvAll timeout): close quietly, the
      // stream cannot be re-aligned and the peer is not making progress.
      doomed.push_back(conn);
    } else if (!out_empty && now - conn->last_activity > io_timeout) {
      // Peer stopped reading with replies pending: reap the slow reader
      // instead of buffering unboundedly.
      doomed.push_back(conn);
    } else if (options_.idle_timeout_sec > 0 && inflight == 0 && out_empty &&
               !conn->mid_frame && conn->parsed.empty() &&
               now - conn->last_activity >
                   SecondsToDuration(options_.idle_timeout_sec)) {
      doomed.push_back(conn);
    }
  }
  for (const auto& conn : doomed) CloseConn(io, conn);
}

// --- invalidation push --------------------------------------------------

void NetServer::RecordInvalidation(InvalidationEventMsg event) {
  {
    std::lock_guard<std::mutex> lock(inv_mu_);
    PendingInvalidation entry;
    entry.seq = inv_seq_.load(std::memory_order_relaxed) + 1;
    entry.event = std::move(event);
    inv_log_.push_back(std::move(entry));
    while (options_.max_invalidation_log > 0 &&
           inv_log_.size() >
               static_cast<size_t>(options_.max_invalidation_log)) {
      inv_log_.pop_front();
    }
    // Release so an I/O thread that wakes on the counter sees the log
    // entry it advertises.
    inv_seq_.fetch_add(1, std::memory_order_release);
  }
  // Wake every I/O thread: idle v5+ sessions get the event pushed without
  // waiting for their next request.
  for (auto& io : io_) {
    {
      std::lock_guard<std::mutex> lock(io->mu);
      io->inv_pending = true;
    }
    SignalIo(io.get());
  }
}

void NetServer::FlushConnInvalidations(Conn* conn) {
  std::vector<InvalidationEventMsg> events;
  uint64_t newest = 0;
  {
    std::lock_guard<std::mutex> lock(inv_mu_);
    newest = inv_seq_.load(std::memory_order_relaxed);
    if (newest == conn->inv_seen) return;
    if (inv_log_.empty() || inv_log_.front().seq > conn->inv_seen + 1) {
      // The bounded log no longer reaches back this far: precise lists
      // for the missed events are gone, so tell the client to drop
      // everything it holds.
      InvalidationEventMsg drop_all;
      drop_all.drop_all = true;
      events.push_back(std::move(drop_all));
    } else {
      for (const PendingInvalidation& entry : inv_log_) {
        if (entry.seq > conn->inv_seen) events.push_back(entry.event);
      }
    }
  }
  conn->inv_seen = newest;
  // Events are framed at the session's own version (a v5 session must
  // not receive v6 frame ids); unsolicited frames carry id 0.
  const uint8_t version = conn->version;
  for (const InvalidationEventMsg& event : events) {
    FrameParts parts =
        EncodeFrameParts(MessageType::kInvalidationEvent,
                         {EncodeInvalidationEvent(event)}, version, 0);
    bytes_sent_.fetch_add(FramePartsBytes(parts), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    for (Bytes& part : parts) {
      if (!part.empty()) conn->out.push_back(std::move(part));
    }
  }
}

// --- worker pool --------------------------------------------------------

void NetServer::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !tasks_.empty();
      });
      if (tasks_.empty()) return;  // stopping and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    HandleFrame(task.conn, task.frame);
    FinishRequest(task.conn, task.frame.version);
  }
}

void NetServer::EnqueueReply(const std::shared_ptr<Conn>& conn,
                             FrameParts parts) {
  bytes_sent_.fetch_add(FramePartsBytes(parts), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closed) return;  // peer is gone; drop the late reply
  for (Bytes& part : parts) {
    if (!part.empty()) conn->out.push_back(std::move(part));
  }
}

void NetServer::EnqueueErrorReply(const std::shared_ptr<Conn>& conn,
                                  const Status& error, uint8_t version,
                                  uint64_t frame_id, double retry_after_ms) {
  EnqueueReply(conn,
               EncodeFrameParts(MessageType::kError,
                                {EncodeError(error, retry_after_ms, version)},
                                version, frame_id));
}

void NetServer::FinishRequest(const std::shared_ptr<Conn>& conn,
                              uint8_t version) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    --conn->inflight;
    if (version < 6) --conn->inflight_legacy;
  }
  IoThread* io = conn->io;
  {
    std::lock_guard<std::mutex> lock(io->mu);
    io->ready.push_back(conn);
  }
  SignalIo(io);
}

void NetServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                            const Frame& frame) {
  const uint8_t version = frame.version;
  const uint64_t id = frame.frame_id;

  // The admission gate covers the query-class request types plus updates
  // (a delta apply clones and rebuilds an engine — heavier than most
  // queries) and the PIR endpoints (a setup computes a hint, a fetch runs
  // a full-section dot product). A probe batch admits as ONE unit even
  // though it evaluates k+1 queries: shedding must not depend on the
  // batch's size, or admission itself would leak how many covers a client
  // sends. Pings and stats stay cheap and ungated so a saturated daemon
  // can still be health-checked and observed.
  const bool gated = frame.type == MessageType::kQueryRequest ||
                     frame.type == MessageType::kNaiveRequest ||
                     frame.type == MessageType::kAggregateRequest ||
                     frame.type == MessageType::kUpdateRequest ||
                     frame.type == MessageType::kProbeBatchRequest ||
                     frame.type == MessageType::kPirSetupRequest ||
                     frame.type == MessageType::kPirFetchRequest;
  if (gated && !AdmitQuery()) {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    EnqueueErrorReply(conn,
                      Status::Unavailable("daemon over capacity, retry later"),
                      version, id, options_.shed_backoff_ms);
    return;
  }

  switch (frame.type) {
    case MessageType::kPingRequest: {
      ping_latency_->Observe(0.0);
      EnqueueReply(conn, EncodeFrameParts(MessageType::kPingResponse, {},
                                          version, id));
      return;
    }
    case MessageType::kQueryRequest: {
      auto query = DecodeQueryRequest(frame.payload, version);
      if (!query.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, query.status(), version, id);
        return;
      }
      auto db = ResolveDb(query->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, db.status(), version, id);
        return;
      }
      // Every served query is traced: the phase decomposition rides back
      // inside the response frame, and the total lands in the histogram.
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      ExecOptions exec;
      exec.ctx = &qctx;
      exec.cached_blocks = query->cached;
      auto result = (*db)->engine().Execute(query->query, exec);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, result.status(), version, id);
        return;
      }
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      query_latency_->Observe(watch.ElapsedMicros());
      ReleaseQuery();
      EnqueueReply(
          conn,
          EncodeFrameParts(
              MessageType::kQueryResponse,
              EncodeQueryResponseParts(std::move(result->response),
                                       result->stats.server_process_us,
                                       result->stats.server_phases),
              version, id));
      return;
    }
    case MessageType::kProbeBatchRequest: {
      auto batch = DecodeProbeBatchRequest(frame.payload);
      if (!batch.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, batch.status(), version, id);
        return;
      }
      auto db = ResolveDb(batch->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, db.status(), version, id);
        return;
      }
      // Every entry runs through the SAME path a lone kQueryRequest takes
      // — fresh trace, same plan-cache behavior, its own latency sample
      // and queries_served tick — so nothing on the server side
      // distinguishes the real probe from its covers. Any entry failing
      // fails the whole batch: a partial answer would mark the failed
      // position.
      std::vector<Bytes> answers;
      answers.reserve(batch->probes.size());
      for (const TranslatedQuery& probe : batch->probes) {
        Stopwatch watch;
        obs::Trace trace;
        obs::QueryContext qctx;
        qctx.trace = &trace;
        ExecOptions exec;
        exec.ctx = &qctx;
        exec.cached_blocks = batch->cached;
        auto result = (*db)->engine().Execute(probe, exec);
        if (!result.ok()) {
          errors_.fetch_add(1, std::memory_order_relaxed);
          ReleaseQuery();
          EnqueueErrorReply(conn, result.status(), version, id);
          return;
        }
        queries_served_.fetch_add(1, std::memory_order_relaxed);
        query_latency_->Observe(watch.ElapsedMicros());
        answers.push_back(
            EncodeQueryResponse(result->response,
                                result->stats.server_process_us,
                                result->stats.server_phases));
      }
      ReleaseQuery();
      EnqueueReply(
          conn,
          EncodeFrameParts(
              MessageType::kProbeBatchResponse,
              {EncodeProbeBatchResponse(answers, batch->pad_responses)},
              version, id));
      return;
    }
    case MessageType::kPirSetupRequest: {
      auto request = DecodePirSetupRequest(frame.payload);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, request.status(), version, id);
        return;
      }
      auto db = ResolveDb(request->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, db.status(), version, id);
        return;
      }
      auto section = (*db)->engine().PirSection(request->section);
      if (!section.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, section.status(), version, id);
        return;
      }
      metrics_.GetCounter("net.pir_setups")->Add(1);
      PirSetupResponseMsg response;
      response.params = (*section)->params();
      response.hint = (*section)->hint();
      ReleaseQuery();
      EnqueueReply(conn,
                   EncodeFrameParts(MessageType::kPirSetupResponse,
                                    {EncodePirSetupResponse(response)},
                                    version, id));
      return;
    }
    case MessageType::kPirFetchRequest: {
      auto request = DecodePirFetchRequest(frame.payload);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, request.status(), version, id);
        return;
      }
      auto db = ResolveDb(request->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, db.status(), version, id);
        return;
      }
      auto section = (*db)->engine().PirSection(request->section);
      if (!section.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, section.status(), version, id);
        return;
      }
      auto answer = (*section)->Answer(request->query);
      if (!answer.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, answer.status(), version, id);
        return;
      }
      metrics_.GetCounter("net.pir_fetches")->Add(1);
      PirFetchResponseMsg response;
      response.answer = std::move(*answer);
      ReleaseQuery();
      EnqueueReply(conn,
                   EncodeFrameParts(MessageType::kPirFetchResponse,
                                    {EncodePirFetchResponse(response)},
                                    version, id));
      return;
    }
    case MessageType::kNaiveRequest: {
      auto request = DecodeNaiveRequest(frame.payload, version);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, request.status(), version, id);
        return;
      }
      auto db = ResolveDb(request->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, db.status(), version, id);
        return;
      }
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      ExecOptions exec;
      exec.ctx = &qctx;
      auto result = (*db)->engine().ExecuteNaive(exec);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, result.status(), version, id);
        return;
      }
      naive_served_.fetch_add(1, std::memory_order_relaxed);
      naive_latency_->Observe(watch.ElapsedMicros());
      ReleaseQuery();
      EnqueueReply(
          conn,
          EncodeFrameParts(
              MessageType::kQueryResponse,
              EncodeQueryResponseParts(std::move(result->response),
                                       result->stats.server_process_us,
                                       result->stats.server_phases),
              version, id));
      return;
    }
    case MessageType::kAggregateRequest: {
      auto request = DecodeAggregateRequest(frame.payload, version);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, request.status(), version, id);
        return;
      }
      auto db = ResolveDb(request->db);
      if (!db.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, db.status(), version, id);
        return;
      }
      Stopwatch watch;
      obs::Trace trace;
      obs::QueryContext qctx;
      qctx.trace = &trace;
      ExecOptions exec;
      exec.ctx = &qctx;
      exec.cached_blocks = request->cached;
      auto result = (*db)->engine().ExecuteAggregate(
          request->query, request->kind, request->index_token, exec);
      if (!result.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, result.status(), version, id);
        return;
      }
      aggregates_served_.fetch_add(1, std::memory_order_relaxed);
      aggregate_latency_->Observe(watch.ElapsedMicros());
      ReleaseQuery();
      EnqueueReply(
          conn,
          EncodeFrameParts(
              MessageType::kAggregateResponse,
              EncodeAggregateResponseParts(std::move(result->response),
                                           result->stats.server_process_us,
                                           result->stats.server_phases),
              version, id));
      return;
    }
    case MessageType::kUpdateRequest: {
      if (!options_.accept_updates) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn,
                          Status::Unsupported(
                              "daemon does not accept updates (restart with "
                              "--allow-updates)"),
                          version, id);
        return;
      }
      auto request = DecodeUpdateRequest(frame.payload);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, request.status(), version, id);
        return;
      }
      auto delta = DeserializeDelta(request->delta);
      if (!delta.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, delta.status(), version, id);
        return;
      }
      const std::string db =
          request->db.empty() ? options_.default_db : request->db;
      if (db.empty()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn,
                          Status::InvalidArgument(
                              "update names no database and the daemon has "
                              "no default"),
                          version, id);
        return;
      }
      Stopwatch watch;
      auto generation = catalog_->ApplyDelta(db, *delta);
      if (!generation.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ReleaseQuery();
        EnqueueErrorReply(conn, generation.status(), version, id);
        return;
      }
      updates_applied_.fetch_add(1, std::memory_order_relaxed);
      update_latency_->Observe(watch.ElapsedMicros());
      metrics_.GetCounter("db." + db + ".updates")->Add(1);

      // Tell every connected v5+ session (this one included) which cached
      // blocks just went stale; the reactor pushes the event to idle
      // sessions without waiting for their next request.
      InvalidationEventMsg event;
      event.db = db;
      event.db_generation = *generation;
      for (const DeltaBlockPut& put : delta->block_puts) {
        BlockAdvert advert;
        advert.id = put.id;
        advert.generation = put.generation;
        event.blocks.push_back(advert);
      }
      for (const auto& [block_id, block_generation] :
           delta->block_tombstones) {
        BlockAdvert advert;
        advert.id = block_id;
        advert.generation = block_generation;
        event.blocks.push_back(advert);
      }
      RecordInvalidation(std::move(event));

      UpdateResponseMsg response;
      response.generation = *generation;
      ReleaseQuery();
      EnqueueReply(conn,
                   EncodeFrameParts(MessageType::kUpdateResponse,
                                    {EncodeUpdateResponse(response)}, version,
                                    id));
      return;
    }
    case MessageType::kStatsRequest: {
      Stopwatch watch;
      auto request = DecodeStatsRequest(frame.payload, version);
      if (!request.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        EnqueueErrorReply(conn, request.status(), version, id);
        return;
      }
      NetCallOptions call;
      call.db = request->db;
      const Bytes payload = EncodeStats(stats(call), version);
      stats_latency_->Observe(watch.ElapsedMicros());
      EnqueueReply(conn, EncodeFrameParts(MessageType::kStatsResponse,
                                          {payload}, version, id));
      return;
    }
    default: {
      // A response type arriving at the server is a confused client;
      // answer with an error but keep the (still frame-aligned) session.
      errors_.fetch_add(1, std::memory_order_relaxed);
      EnqueueErrorReply(conn,
                        Status::InvalidArgument(
                            std::string("unexpected message type ") +
                            MessageTypeName(frame.type)),
                        version, id);
      return;
    }
  }
}

}  // namespace net
}  // namespace xcrypt
