#include "net/catalog.h"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

namespace xcrypt {
namespace net {

namespace fs = std::filesystem;

namespace {

/// Cheap change detector for a bundle file: mtime (ns) + size. Taken
/// BEFORE the file is read, so an upload racing the load at worst makes
/// the fingerprint stale and triggers one extra reload on the next Get —
/// never a missed update.
bool Fingerprint(const std::string& path, int64_t* mtime_ns, int64_t* size) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return false;
  const auto bytes = fs::file_size(path, ec);
  if (ec) return false;
  *mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  mtime.time_since_epoch())
                  .count();
  *size = static_cast<int64_t>(bytes);
  return true;
}

}  // namespace

BundleCatalog::BundleCatalog(const CatalogOptions& options)
    : options_(options) {}

Result<std::unique_ptr<BundleCatalog>> BundleCatalog::Open(
    const std::string& dir, const CatalogOptions& options) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot read catalog directory " + dir + ": " +
                            ec.message());
  }
  auto catalog = std::make_unique<BundleCatalog>(options);
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".xcr") continue;
    const std::string name = path.stem().string();
    if (name.empty()) continue;
    Slot slot;
    slot.path = path.string();
    catalog->slots_.emplace(name, std::move(slot));
  }
  if (catalog->slots_.empty()) {
    return Status::InvalidArgument("no .xcr bundles in " + dir);
  }
  return catalog;
}

void BundleCatalog::ConfigureEngine(ResidentDb* fresh) const {
  fresh->engine_->SetDataGeneration(fresh->owner_generation());
  obs::MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics != nullptr) fresh->engine_->SetMetricsRegistry(metrics);
}

void BundleCatalog::SetMetricsRegistry(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.store(registry, std::memory_order_release);
  evictions_ = registry != nullptr
                   ? registry->GetCounter("catalog.evictions")
                   : nullptr;
  resident_gauge_ = registry != nullptr
                        ? registry->GetGauge("catalog.resident_bytes")
                        : nullptr;
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(ResidentBytesLocked());
  }
}

int64_t BundleCatalog::ResidentBytesLocked() const {
  int64_t total = 0;
  for (const auto& [name, slot] : slots_) {
    if (slot.resident != nullptr && !slot.pinned) {
      total += slot.resident->ResidentBytes();
    }
  }
  return total;
}

int64_t BundleCatalog::ResidentBytesTotal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ResidentBytesLocked();
}

Status BundleCatalog::AddBundle(const std::string& name, HostedBundle bundle) {
  if (name.empty()) {
    return Status::InvalidArgument("database name must not be empty");
  }
  std::unique_lock<std::mutex> lock(mu_);
  // If a disk load of the same name is mid-flight, let it publish first;
  // the pinned bundle then cleanly replaces it.
  load_cv_.wait(lock, [&] {
    auto it = slots_.find(name);
    return it == slots_.end() || !it->second.loading;
  });
  Slot& slot = slots_[name];
  slot.path.clear();
  slot.pinned = true;
  std::shared_ptr<ResidentDb> fresh(new ResidentDb());
  fresh->name_ = name;
  fresh->bundle_ = std::move(bundle);
  fresh->engine_ = std::make_unique<ServerEngine>(&fresh->bundle_.database,
                                                  &fresh->bundle_.metadata);
  ConfigureEngine(fresh.get());
  slot.loads += 1;
  fresh->generation_ = slot.loads;
  slot.resident = std::move(fresh);
  slot.last_used = ++use_tick_;
  return Status::Ok();
}

Result<std::shared_ptr<const ResidentDb>> BundleCatalog::Get(
    const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      // Pure map miss: hostile names ("../…") never reach the filesystem.
      return Status::NotFound("no database named \"" + name + "\"");
    }
    Slot& slot = it->second;
    if (slot.loading) {
      // Another thread is building this engine; wait for it instead of
      // racing a second disk read, then re-resolve from scratch (the slot
      // may have been unloaded meanwhile).
      load_cv_.wait(lock);
      continue;
    }
    if (slot.resident != nullptr && options_.hot_reload && !slot.pinned) {
      bool changed = false;
      if (slot.file_has_generation) {
        // Primary signal for format-v3+ images: the owner-assigned bundle
        // generation in the file header (a header-only read, no stat
        // fingerprinting). Robust where mtime+size is not — a same-size
        // rewrite within the filesystem's mtime granularity still
        // reloads, and mtime churn on an unchanged file does not.
        auto header = ReadBundleHeader(slot.path);
        changed = header.ok() && header->has_generation &&
                  header->generation != slot.file_generation;
      } else if (!slot.dirty) {
        // v2 images carry no generation; fall back to mtime + size.
        int64_t mtime_ns = 0, size = 0;
        changed = Fingerprint(slot.path, &mtime_ns, &size) &&
                  (mtime_ns != slot.file_mtime_ns || size != slot.file_size);
      }
      if (changed) {
        // Owner re-uploaded: unlink the old resident (in-flight handles
        // keep it alive) and fall through to a fresh load.
        slot.resident = nullptr;
        slot.dirty = false;
      }
    }
    if (slot.resident != nullptr) {
      slot.last_used = ++use_tick_;
      std::shared_ptr<const ResidentDb> handle = slot.resident;
      // Mapped residents grow ResidentBytes lazily (index sections fault
      // in after the load, on first query), so the budget is re-checked
      // on every warm hit, not just at load time. `handle` keeps the
      // caller's database alive even if it is the one evicted.
      EvictIfNeeded(name);
      return handle;
    }
    return LoadSlot(lock, name, slot.path);
  }
}

Result<std::shared_ptr<const ResidentDb>> BundleCatalog::LoadSlot(
    std::unique_lock<std::mutex>& lock, const std::string& name,
    const std::string& path) {
  slots_[name].loading = true;
  lock.unlock();

  // Disk read + engine build happen outside the catalog lock: a cold load
  // of one database never stalls queries against the others.
  int64_t mtime_ns = 0, size = 0;
  const bool have_fp = Fingerprint(path, &mtime_ns, &size);
  auto header = ReadBundleHeader(path);
  std::shared_ptr<ResidentDb> fresh;
  Status load_status = Status::Ok();
  if (options_.map_v4 && header.ok() && header->version >= 4) {
    // Format v4: map the image instead of deserializing it. Open reads
    // only the section table + block index; everything else faults in on
    // first query through the lazy engine, so a cold attach of a huge
    // database is near-instant. The name check mirrors LoadBundle's: a
    // mis-filed bundle is rejected rather than served under the wrong
    // tenant.
    auto mapped = MmapBundleReader::Open(path, name);
    if (mapped.ok()) {
      fresh = std::shared_ptr<ResidentDb>(new ResidentDb());
      fresh->name_ = name;
      fresh->mapped_ = std::move(*mapped);
      fresh->bundle_.name = name;
      fresh->engine_ = std::make_unique<ServerEngine>(fresh->mapped_.get());
      ConfigureEngine(fresh.get());
    } else {
      load_status = mapped.status();
    }
  } else {
    // The image must agree with the filename-stem routing: a mis-filed
    // bundle is rejected here rather than served under the wrong tenant.
    auto bundle = LoadBundle(path, name);
    if (bundle.ok()) {
      fresh = std::shared_ptr<ResidentDb>(new ResidentDb());
      fresh->name_ = name;
      fresh->bundle_ = std::move(*bundle);
      fresh->engine_ = std::make_unique<ServerEngine>(
          &fresh->bundle_.database, &fresh->bundle_.metadata);
      ConfigureEngine(fresh.get());
    } else {
      load_status = bundle.status();
    }
  }

  lock.lock();
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    // Unloaded while we were reading; don't resurrect it.
    load_cv_.notify_all();
    return Status::NotFound("database \"" + name + "\" was unloaded");
  }
  Slot& slot = it->second;
  slot.loading = false;
  load_cv_.notify_all();
  if (!load_status.ok()) return load_status;
  slot.loads += 1;
  fresh->generation_ = slot.loads;
  slot.resident = std::move(fresh);
  slot.file_mtime_ns = have_fp ? mtime_ns : 0;
  slot.file_size = have_fp ? size : 0;
  slot.file_has_generation = header.ok() && header->has_generation;
  slot.file_generation = slot.file_has_generation ? header->generation : 0;
  slot.dirty = false;
  slot.last_used = ++use_tick_;
  std::shared_ptr<const ResidentDb> handle = slot.resident;
  EvictIfNeeded(name);
  return handle;
}

void BundleCatalog::EvictIfNeeded(const std::string& keep) {
  for (;;) {
    int resident = 0;
    for (const auto& [n, s] : slots_) {
      if (s.resident != nullptr && !s.pinned) ++resident;
    }
    const int64_t bytes = ResidentBytesLocked();
    if (resident_gauge_ != nullptr) resident_gauge_->Set(bytes);
    const bool over_count =
        options_.max_resident > 0 && resident > options_.max_resident;
    const bool over_bytes = options_.memory_budget_bytes > 0 &&
                            bytes > options_.memory_budget_bytes;
    if (!over_count && !over_bytes) return;
    // Drop the least-recently-used unpinned resident (never `keep`,
    // unless `keep` is the only candidate and the byte budget is blown —
    // better to serve it cold-faulting than to let residency run
    // unbounded).
    std::map<std::string, Slot>::iterator victim = slots_.end();
    bool keep_is_candidate = false;
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      const Slot& s = it->second;
      // A dirty resident is ahead of its backing file; evicting it would
      // roll applied deltas back on the next load.
      if (s.resident == nullptr || s.pinned || s.dirty) continue;
      if (it->first == keep) {
        keep_is_candidate = true;
        continue;
      }
      if (victim == slots_.end() ||
          s.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == slots_.end()) {
      if (over_bytes && keep_is_candidate) {
        victim = slots_.find(keep);
      } else {
        return;  // everything protected
      }
    }
    victim->second.resident = nullptr;
    if (evictions_ != nullptr) evictions_->Add();
  }
}

Result<uint64_t> BundleCatalog::ApplyDelta(const std::string& name,
                                           const DeltaBundle& delta) {
  // One applier at a time per catalog; readers are untouched (they hold
  // shared_ptr handles and never see a half-applied state).
  std::lock_guard<std::mutex> apply_lock(apply_mu_);

  auto resident = Get(name);
  if (!resident.ok()) return resident.status();
  if ((*resident)->owner_generation() == delta.new_generation) {
    // Replay of an already-absorbed delta (the owner retried after a
    // dropped ack): nothing to do, answer with the generation it asked
    // for so the retry converges.
    return delta.new_generation;
  }

  // Clone the resident bundle outside the catalog lock. A mapped
  // resident materializes an eager copy from its (immutable) mapping;
  // an eager one round-trips through the image format, because B+-trees
  // are move-only and the format is a lossless carrier of server-visible
  // state.
  Result<HostedBundle> clone = [&]() -> Result<HostedBundle> {
    if ((*resident)->is_mapped()) return (*resident)->mapped()->Materialize();
    const HostedBundle& current = (*resident)->bundle();
    return DeserializeBundle(SerializeBundle(
        current.database, current.metadata, current.name, current.generation));
  }();
  if (!clone.ok()) return clone.status();
  XCRYPT_RETURN_NOT_OK(xcrypt::ApplyDelta(&*clone, delta));

  std::unique_lock<std::mutex> lock(mu_);
  load_cv_.wait(lock, [&] {
    auto it = slots_.find(name);
    return it == slots_.end() || !it->second.loading;
  });
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("database \"" + name + "\" was unloaded");
  }
  Slot& slot = it->second;
  if (slot.resident != nullptr &&
      slot.resident->owner_generation() != delta.base_generation) {
    // The resident moved while we were applying (hot reload of a newer
    // upload). If it already holds this delta's result the apply is a
    // no-op; otherwise the delta no longer has a base to stand on.
    if (slot.resident->owner_generation() == delta.new_generation) {
      return delta.new_generation;
    }
    return Status::InvalidArgument(
        "database \"" + name + "\" moved to generation " +
        std::to_string(slot.resident->owner_generation()) +
        " while a delta from " + std::to_string(delta.base_generation) +
        " was applying");
  }
  const bool was_mapped =
      slot.resident != nullptr && slot.resident->is_mapped();
  std::shared_ptr<ResidentDb> fresh;
  bool dirty = !slot.pinned && !slot.path.empty();
  if (was_mapped && !slot.path.empty()) {
    // Copy-on-write remap: write the applied clone back as a fresh v4
    // image (write-then-rename — readers holding the old mapping keep
    // the old inode alive) and re-open it mapped. The backing file then
    // carries the delta, so the slot is NOT dirty and stays evictable.
    Status saved =
        SaveBundle(clone->database, clone->metadata, slot.path, name,
                   clone->generation, BundleFormat::kV4);
    if (saved.ok()) {
      auto remapped = MmapBundleReader::Open(slot.path, name);
      if (remapped.ok()) {
        fresh = std::shared_ptr<ResidentDb>(new ResidentDb());
        fresh->name_ = name;
        fresh->mapped_ = std::move(*remapped);
        fresh->bundle_.name = name;
        fresh->engine_ = std::make_unique<ServerEngine>(fresh->mapped_.get());
        ConfigureEngine(fresh.get());
        int64_t mtime_ns = 0, size = 0;
        if (Fingerprint(slot.path, &mtime_ns, &size)) {
          slot.file_mtime_ns = mtime_ns;
          slot.file_size = size;
        }
        slot.file_has_generation = true;
        slot.file_generation = clone->generation;
        dirty = false;
      }
    }
    // On any failure fall through to an eager dirty resident: the apply
    // still takes effect in memory, only the backing file lags.
  }
  if (fresh == nullptr) {
    fresh = std::shared_ptr<ResidentDb>(new ResidentDb());
    fresh->name_ = name;
    fresh->bundle_ = std::move(*clone);
    fresh->engine_ = std::make_unique<ServerEngine>(&fresh->bundle_.database,
                                                    &fresh->bundle_.metadata);
    ConfigureEngine(fresh.get());
  }
  slot.loads += 1;
  fresh->generation_ = slot.loads;
  slot.resident = std::move(fresh);
  // Without the remap above, file-backed slots now run ahead of their
  // backing file until the owner uploads a checkpoint (Get's generation
  // check absorbs that cleanly).
  slot.dirty = dirty;
  slot.last_used = ++use_tick_;
  EvictIfNeeded(name);
  return delta.new_generation;
}

Status BundleCatalog::Reload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("no database named \"" + name + "\"");
  }
  if (it->second.pinned) return Status::Ok();  // no file to reload from
  it->second.resident = nullptr;
  return Status::Ok();
}

Status BundleCatalog::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("no database named \"" + name + "\"");
  }
  slots_.erase(it);
  load_cv_.notify_all();  // wake waiters so they observe the NotFound
  return Status::Ok();
}

std::vector<std::string> BundleCatalog::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

int BundleCatalog::ResidentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& [name, slot] : slots_) {
    if (slot.resident != nullptr && !slot.pinned) ++count;
  }
  return count;
}

}  // namespace net
}  // namespace xcrypt
