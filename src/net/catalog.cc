#include "net/catalog.h"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

namespace xcrypt {
namespace net {

namespace fs = std::filesystem;

namespace {

/// Cheap change detector for a bundle file: mtime (ns) + size. Taken
/// BEFORE the file is read, so an upload racing the load at worst makes
/// the fingerprint stale and triggers one extra reload on the next Get —
/// never a missed update.
bool Fingerprint(const std::string& path, int64_t* mtime_ns, int64_t* size) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return false;
  const auto bytes = fs::file_size(path, ec);
  if (ec) return false;
  *mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  mtime.time_since_epoch())
                  .count();
  *size = static_cast<int64_t>(bytes);
  return true;
}

}  // namespace

BundleCatalog::BundleCatalog(const CatalogOptions& options)
    : options_(options) {}

Result<std::unique_ptr<BundleCatalog>> BundleCatalog::Open(
    const std::string& dir, const CatalogOptions& options) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot read catalog directory " + dir + ": " +
                            ec.message());
  }
  auto catalog = std::make_unique<BundleCatalog>(options);
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".xcr") continue;
    const std::string name = path.stem().string();
    if (name.empty()) continue;
    Slot slot;
    slot.path = path.string();
    catalog->slots_.emplace(name, std::move(slot));
  }
  if (catalog->slots_.empty()) {
    return Status::InvalidArgument("no .xcr bundles in " + dir);
  }
  return catalog;
}

Status BundleCatalog::AddBundle(const std::string& name, HostedBundle bundle) {
  if (name.empty()) {
    return Status::InvalidArgument("database name must not be empty");
  }
  std::unique_lock<std::mutex> lock(mu_);
  // If a disk load of the same name is mid-flight, let it publish first;
  // the pinned bundle then cleanly replaces it.
  load_cv_.wait(lock, [&] {
    auto it = slots_.find(name);
    return it == slots_.end() || !it->second.loading;
  });
  Slot& slot = slots_[name];
  slot.path.clear();
  slot.pinned = true;
  std::shared_ptr<ResidentDb> fresh(new ResidentDb());
  fresh->name_ = name;
  fresh->bundle_ = std::move(bundle);
  fresh->engine_ = std::make_unique<ServerEngine>(&fresh->bundle_.database,
                                                  &fresh->bundle_.metadata);
  slot.loads += 1;
  fresh->generation_ = slot.loads;
  slot.resident = std::move(fresh);
  slot.last_used = ++use_tick_;
  return Status::Ok();
}

Result<std::shared_ptr<const ResidentDb>> BundleCatalog::Get(
    const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      // Pure map miss: hostile names ("../…") never reach the filesystem.
      return Status::NotFound("no database named \"" + name + "\"");
    }
    Slot& slot = it->second;
    if (slot.loading) {
      // Another thread is building this engine; wait for it instead of
      // racing a second disk read, then re-resolve from scratch (the slot
      // may have been unloaded meanwhile).
      load_cv_.wait(lock);
      continue;
    }
    if (slot.resident != nullptr && options_.hot_reload && !slot.pinned) {
      int64_t mtime_ns = 0, size = 0;
      if (Fingerprint(slot.path, &mtime_ns, &size) &&
          (mtime_ns != slot.file_mtime_ns || size != slot.file_size)) {
        // Owner re-uploaded: unlink the old resident (in-flight handles
        // keep it alive) and fall through to a fresh load.
        slot.resident = nullptr;
      }
    }
    if (slot.resident != nullptr) {
      slot.last_used = ++use_tick_;
      return slot.resident;
    }
    return LoadSlot(lock, name, slot.path);
  }
}

Result<std::shared_ptr<const ResidentDb>> BundleCatalog::LoadSlot(
    std::unique_lock<std::mutex>& lock, const std::string& name,
    const std::string& path) {
  slots_[name].loading = true;
  lock.unlock();

  // Disk read + engine build happen outside the catalog lock: a cold load
  // of one database never stalls queries against the others.
  int64_t mtime_ns = 0, size = 0;
  const bool have_fp = Fingerprint(path, &mtime_ns, &size);
  auto bundle = LoadBundle(path);
  std::shared_ptr<ResidentDb> fresh;
  if (bundle.ok()) {
    fresh = std::shared_ptr<ResidentDb>(new ResidentDb());
    fresh->name_ = name;
    fresh->bundle_ = std::move(*bundle);
    fresh->engine_ = std::make_unique<ServerEngine>(&fresh->bundle_.database,
                                                    &fresh->bundle_.metadata);
  }

  lock.lock();
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    // Unloaded while we were reading; don't resurrect it.
    load_cv_.notify_all();
    return Status::NotFound("database \"" + name + "\" was unloaded");
  }
  Slot& slot = it->second;
  slot.loading = false;
  load_cv_.notify_all();
  if (!bundle.ok()) return bundle.status();
  slot.loads += 1;
  fresh->generation_ = slot.loads;
  slot.resident = std::move(fresh);
  slot.file_mtime_ns = have_fp ? mtime_ns : 0;
  slot.file_size = have_fp ? size : 0;
  slot.last_used = ++use_tick_;
  std::shared_ptr<const ResidentDb> handle = slot.resident;
  EvictIfNeeded(name);
  return handle;
}

void BundleCatalog::EvictIfNeeded(const std::string& keep) {
  if (options_.max_resident <= 0) return;
  for (;;) {
    int resident = 0;
    for (const auto& [n, s] : slots_) {
      if (s.resident != nullptr && !s.pinned) ++resident;
    }
    if (resident <= options_.max_resident) return;
    // Drop the least-recently-used unpinned resident (never `keep`).
    std::map<std::string, Slot>::iterator victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      const Slot& s = it->second;
      if (s.resident == nullptr || s.pinned || it->first == keep) continue;
      if (victim == slots_.end() ||
          s.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == slots_.end()) return;  // everything protected
    victim->second.resident = nullptr;
  }
}

Status BundleCatalog::Reload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("no database named \"" + name + "\"");
  }
  if (it->second.pinned) return Status::Ok();  // no file to reload from
  it->second.resident = nullptr;
  return Status::Ok();
}

Status BundleCatalog::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("no database named \"" + name + "\"");
  }
  slots_.erase(it);
  load_cv_.notify_all();  // wake waiters so they observe the NotFound
  return Status::Ok();
}

std::vector<std::string> BundleCatalog::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

int BundleCatalog::ResidentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& [name, slot] : slots_) {
    if (slot.resident != nullptr && !slot.pinned) ++count;
  }
  return count;
}

}  // namespace net
}  // namespace xcrypt
