#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace xcrypt {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status SetNonBlockingFd(int fd, bool enable) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(Errno("fcntl(F_GETFL)"));
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, want) < 0) {
    return Status::Internal(Errno("fcntl(F_SETFL)"));
  }
  return Status::Ok();
}

Status SetSendTimeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  if (setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::Internal(Errno("setsockopt(SO_SNDTIMEO)"));
  }
  return Status::Ok();
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &info) != 0 ||
      info == nullptr) {
    return Status::Unavailable("cannot resolve host " + host);
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(info->ai_addr)->sin_addr;
  freeaddrinfo(info);
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Dial(const std::string& host, uint16_t port,
                            double connect_timeout_sec,
                            double io_timeout_sec) {
  auto addr = ResolveV4(host.empty() ? "127.0.0.1" : host, port);
  if (!addr.ok()) return addr.status();

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::Internal(Errno("socket"));

  // Non-blocking connect so the timeout is ours, not the kernel's
  // (which can be minutes for an unresponsive address).
  XCRYPT_RETURN_NOT_OK(SetNonBlockingFd(sock.fd(), true));
  int rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&*addr),
                     sizeof(*addr));
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::Unavailable(Errno("connect to " + host + ":" +
                                     std::to_string(port)));
  }
  if (rc < 0) {
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int timeout_ms = static_cast<int>(connect_timeout_sec * 1000);
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      return Status::Unavailable("connect timeout to " + host + ":" +
                                 std::to_string(port));
    }
    if (ready < 0) return Status::Internal(Errno("poll(connect)"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err));
    }
  }
  XCRYPT_RETURN_NOT_OK(SetNonBlockingFd(sock.fd(), false));
  XCRYPT_RETURN_NOT_OK(SetSendTimeout(sock.fd(), io_timeout_sec));
  const int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> Socket::Listen(const std::string& host, uint16_t port,
                              int backlog) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::Internal(Errno("socket"));
  const int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&*addr),
             sizeof(*addr)) < 0) {
    return Status::Unavailable(Errno("bind " + host + ":" +
                                     std::to_string(port)));
  }
  if (::listen(sock.fd(), backlog) < 0) {
    return Status::Internal(Errno("listen"));
  }
  return sock;
}

Result<Socket> Socket::Accept(double tick_sec) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(tick_sec * 1000));
  if (ready == 0) return Socket();  // no pending connection this tick
  if (ready < 0) {
    if (errno == EINTR) return Socket();
    return Status::Internal(Errno("poll(accept)"));
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return Socket();
    }
    return Status::Unavailable(Errno("accept"));
  }
  Socket conn(fd);
  const int one = 1;
  setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Result<uint16_t> Socket::LocalPort() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::Internal(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status Socket::SendAll(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("send timeout");
      }
      return Status::Unavailable(Errno("send"));
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

Status Socket::SetNonBlocking(bool enable) {
  return SetNonBlockingFd(fd_, enable);
}

Status Socket::RecvAll(uint8_t* data, size_t n, double timeout_sec,
                       const std::atomic<bool>* cancel, bool allow_idle) {
  constexpr int kTickMs = 100;
  size_t got = 0;
  auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout_sec));
  while (got < n) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Unavailable("cancelled");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("poll(recv)"));
    }
    if (ready == 0) {
      if (got == 0 && allow_idle) continue;  // idle, not stalled mid-frame
      if (Clock::now() >= deadline) {
        return Status::Unavailable("recv timeout");
      }
      continue;
    }
    const ssize_t rc = ::recv(fd_, data + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(Errno("recv"));
    }
    if (rc == 0) return Status::Unavailable("connection closed by peer");
    if (got == 0 && allow_idle) {
      // First byte of a new frame: the completion clock starts now.
      deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(timeout_sec));
    }
    got += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace xcrypt
