#ifndef XCRYPT_NET_SERVER_H_
#define XCRYPT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "storage/serializer.h"

namespace xcrypt {
namespace net {

struct NetServerOptions {
  NetServerOptions() {}
  int num_threads = 8;          ///< fixed worker pool size
  int backlog = 64;             ///< listen(2) backlog
  double io_timeout_sec = 30.;  ///< per-frame read/write completion bound
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// The untrusted service provider as an actual network daemon: owns a
/// HostedBundle (encrypted database + metadata — never keys or
/// plaintext), listens on TCP, and evaluates translated queries for any
/// number of clients.
///
/// Threading model: one acceptor thread feeds a queue of connections; a
/// fixed pool of workers each adopt one connection at a time and serve
/// its requests serially (a session). Requests on different connections
/// run concurrently against one shared ServerEngine, whose lazy caches
/// are internally synchronized (core/server.h).
///
/// Shutdown() drains gracefully: stop accepting, let every in-flight
/// request finish and its response flush, then close sessions and join.
class NetServer {
 public:
  /// Starts serving `bundle` on host:port (port 0 → ephemeral; read the
  /// bound port back via port()).
  static Result<std::unique_ptr<NetServer>> Serve(
      HostedBundle bundle, const std::string& host, uint16_t port,
      const NetServerOptions& options = NetServerOptions());

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  uint16_t port() const { return port_; }

  /// Current counters and latency histograms (the same numbers a remote
  /// client gets via kStatsRequest).
  NetStats stats() const;

  /// Full metrics snapshot: the daemon's latency histograms plus the
  /// request/byte counters, mergeable across scrapes.
  obs::MetricsSnapshot SnapshotMetrics() const;

  /// SnapshotMetrics() rendered as JSON (the --metrics-json dump format).
  std::string MetricsJson() const { return SnapshotMetrics().RenderJson(); }

  /// Graceful drain; idempotent, also run by the destructor.
  void Shutdown();

 private:
  NetServer() = default;

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(Socket conn);
  /// Handles one decoded request frame; returns false when the
  /// connection must close (framing is broken beyond recovery).
  bool HandleFrame(Socket& conn, const Frame& frame);
  Status SendError(Socket& conn, const Status& error);

  HostedBundle bundle_;
  std::unique_ptr<ServerEngine> engine_;
  NetServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Socket> pending_;

  // Counters. Relaxed order: they are statistics, not synchronization.
  mutable std::atomic<uint64_t> queries_served_{0};
  mutable std::atomic<uint64_t> aggregates_served_{0};
  mutable std::atomic<uint64_t> naive_served_{0};
  mutable std::atomic<uint64_t> errors_{0};
  mutable std::atomic<uint64_t> connections_total_{0};
  mutable std::atomic<uint64_t> connections_active_{0};
  mutable std::atomic<uint64_t> bytes_received_{0};
  mutable std::atomic<uint64_t> bytes_sent_{0};

  /// Latency histograms, one per message type. The pointers are interned
  /// once at startup; workers then touch only lock-free atomics.
  obs::MetricsRegistry metrics_;
  obs::Histogram* query_latency_ = nullptr;
  obs::Histogram* naive_latency_ = nullptr;
  obs::Histogram* aggregate_latency_ = nullptr;
  obs::Histogram* ping_latency_ = nullptr;
  obs::Histogram* stats_latency_ = nullptr;
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_SERVER_H_
