#ifndef XCRYPT_NET_SERVER_H_
#define XCRYPT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/server.h"
#include "net/catalog.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "storage/serializer.h"

namespace xcrypt {
namespace net {

struct NetServerOptions {
  NetServerOptions() {}
  int num_threads = 8;          ///< fixed worker pool size
  int backlog = 64;             ///< listen(2) backlog
  double io_timeout_sec = 30.;  ///< per-frame read/write completion bound
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Database served to requests that name none (every v3 request, and
  /// v4 requests with an empty db field). Empty + a request naming no
  /// database → InvalidArgument. Serve() fills it in automatically.
  std::string default_db;
  /// Admission control: queries/aggregates/naive requests evaluating
  /// concurrently across all connections (0 = unbounded; pings and stats
  /// are never gated). Excess requests wait in a bounded queue.
  int max_inflight_queries = 0;
  /// Waiting slots beyond max_inflight_queries. When both are full the
  /// request is shed with a retryable Unavailable instead of queueing
  /// unboundedly — one hot tenant cannot starve the daemon.
  int max_queued_queries = 8;
  /// Backoff hint attached to Unavailable sheds (wire v4): the client's
  /// retry loop treats it as a floor for its next sleep.
  double shed_backoff_ms = 50.0;
  /// Accept kUpdateRequest frames (wire v5). Off by default: an update
  /// mutates hosted state, so the operator must opt in (--allow-updates).
  bool accept_updates = false;
  /// Bounded per-daemon log of recent invalidation events. A v5 session
  /// that falls further behind than the log reaches gets one drop-all
  /// event instead of a precise stale-block list.
  int max_invalidation_log = 64;
};

/// The untrusted service provider as an actual network daemon: owns a
/// BundleCatalog of hosted databases (encrypted database + metadata —
/// never keys or plaintext), listens on TCP, and evaluates translated
/// queries for any number of clients against any of its databases (wire
/// v4 routes per-request; v3 sessions get default_db).
///
/// Threading model: one acceptor thread feeds a queue of connections; a
/// fixed pool of workers each adopt one connection at a time and serve
/// its requests serially (a session). Requests on different connections
/// run concurrently; each resolves its database through the catalog and
/// pins the engine for the duration of the call, so hot reloads and LRU
/// evictions never break an in-flight query.
///
/// Shutdown() drains gracefully: stop accepting, let every in-flight
/// request finish and its response flush, then close sessions and join.
class NetServer {
 public:
  /// Single-database convenience: wraps `bundle` in a one-entry catalog
  /// (named after the bundle, or "default") and serves it on host:port
  /// (port 0 → ephemeral; read the bound port back via port()).
  static Result<std::unique_ptr<NetServer>> Serve(
      HostedBundle bundle, const std::string& host, uint16_t port,
      const NetServerOptions& options = NetServerOptions());

  /// Multi-tenant entry point: serves every database in `catalog`.
  /// `options.default_db`, when set, must name a database in the catalog.
  static Result<std::unique_ptr<NetServer>> ServeCatalog(
      std::unique_ptr<BundleCatalog> catalog, const std::string& host,
      uint16_t port, const NetServerOptions& options = NetServerOptions());

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  uint16_t port() const { return port_; }

  /// The catalog behind the daemon (reload/unload administration).
  BundleCatalog& catalog() { return *catalog_; }

  /// Current counters and latency histograms (the same numbers a remote
  /// client gets via kStatsRequest). `db` selects which database the
  /// num_blocks/ciphertext_bytes fields describe (empty = default).
  NetStats stats(const std::string& db = std::string()) const;

  /// Full metrics snapshot: the daemon's latency histograms plus the
  /// request/byte counters, mergeable across scrapes.
  obs::MetricsSnapshot SnapshotMetrics() const;

  /// SnapshotMetrics() rendered as JSON (the --metrics-json dump format).
  std::string MetricsJson() const { return SnapshotMetrics().RenderJson(); }

  /// Graceful drain; idempotent, also run by the destructor.
  void Shutdown();

 private:
  NetServer() = default;

  static Result<std::unique_ptr<NetServer>> Start(
      std::unique_ptr<BundleCatalog> catalog, const std::string& host,
      uint16_t port, const NetServerOptions& options);

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(Socket conn);
  /// Handles one decoded request frame; returns false when the
  /// connection must close (framing is broken beyond recovery). Replies
  /// are framed at the request's wire version.
  bool HandleFrame(Socket& conn, const Frame& frame);
  Status SendError(Socket& conn, const Status& error, uint8_t version,
                   double retry_after_ms = 0.0);

  /// Appends an invalidation event to the bounded log and bumps the
  /// sequence counter, nudging every idle v5 session off its read wait.
  void RecordInvalidation(InvalidationEventMsg event);

  /// Pushes every invalidation event this session has not seen yet
  /// (advancing *inv_seen); a session beyond the log's reach gets one
  /// drop-all event. Returns false when the connection died mid-push.
  bool FlushInvalidations(Socket& conn, uint64_t* inv_seen);

  /// Maps a request's db field to a pinned resident database (empty →
  /// default_db) and counts the hit under "db.<name>.queries".
  Result<std::shared_ptr<const ResidentDb>> ResolveDb(
      const std::string& db) const;

  /// Admission gate for query-class requests. Returns true with a slot
  /// held (release with ReleaseQuery), false when the request must be
  /// shed. Blocks in the bounded wait queue when inflight is full.
  bool AdmitQuery();
  void ReleaseQuery();

  std::unique_ptr<BundleCatalog> catalog_;
  NetServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Socket> pending_;

  /// Admission state: inflight query-class requests + waiters.
  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  int inflight_ = 0;
  int waiting_ = 0;

  /// Cache-invalidation push state. inv_seq_ counts recorded events; each
  /// v5 session tracks how far it has pushed and wakes off idle reads
  /// when the counter moves.
  struct PendingInvalidation {
    uint64_t seq = 0;
    InvalidationEventMsg event;
  };
  std::mutex inv_mu_;
  std::deque<PendingInvalidation> inv_log_;
  std::atomic<uint64_t> inv_seq_{0};

  // Counters. Relaxed order: they are statistics, not synchronization.
  mutable std::atomic<uint64_t> queries_served_{0};
  mutable std::atomic<uint64_t> aggregates_served_{0};
  mutable std::atomic<uint64_t> naive_served_{0};
  mutable std::atomic<uint64_t> errors_{0};
  mutable std::atomic<uint64_t> connections_total_{0};
  mutable std::atomic<uint64_t> connections_active_{0};
  mutable std::atomic<uint64_t> bytes_received_{0};
  mutable std::atomic<uint64_t> bytes_sent_{0};
  mutable std::atomic<uint64_t> queries_shed_{0};
  mutable std::atomic<uint64_t> updates_applied_{0};

  /// Latency histograms, one per message type. The pointers are interned
  /// once at startup; workers then touch only lock-free atomics.
  mutable obs::MetricsRegistry metrics_;
  obs::Histogram* query_latency_ = nullptr;
  obs::Histogram* naive_latency_ = nullptr;
  obs::Histogram* aggregate_latency_ = nullptr;
  obs::Histogram* ping_latency_ = nullptr;
  obs::Histogram* stats_latency_ = nullptr;
  obs::Histogram* update_latency_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_SERVER_H_
