#ifndef XCRYPT_NET_SERVER_H_
#define XCRYPT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/server.h"
#include "net/catalog.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "storage/serializer.h"

namespace xcrypt {
namespace net {

struct NetServerOptions {
  NetServerOptions() {}
  int num_threads = 8;  ///< fixed worker pool size (query evaluation)
  /// Reactor I/O threads. Each runs an epoll loop over a share of the
  /// connections, doing only non-blocking reads/writes and frame parsing;
  /// a handful suffice for tens of thousands of sockets.
  int io_threads = 2;
  int backlog = 64;             ///< listen(2) backlog
  double io_timeout_sec = 30.;  ///< per-frame read/write progress bound
  /// Reap connections idle (no request in flight, nothing buffered)
  /// longer than this. 0 keeps the pre-reactor behavior: idle persistent
  /// connections stay open indefinitely.
  double idle_timeout_sec = 0.;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Database served to requests that name none (every v3 request, and
  /// v4 requests with an empty db field). Empty + a request naming no
  /// database → InvalidArgument. ServerConfig::ForBundle fills it in.
  std::string default_db;
  /// Admission control: queries/aggregates/naive requests evaluating
  /// concurrently across all connections (0 = unbounded; pings and stats
  /// are never gated). Excess requests wait in a bounded queue.
  int max_inflight_queries = 0;
  /// Waiting slots beyond max_inflight_queries. When both are full the
  /// request is shed with a retryable Unavailable instead of queueing
  /// unboundedly — one hot tenant cannot starve the daemon.
  int max_queued_queries = 8;
  /// Backoff hint attached to Unavailable sheds (wire v4): the client's
  /// retry loop treats it as a floor for its next sleep.
  double shed_backoff_ms = 50.0;
  /// Accept kUpdateRequest frames (wire v5). Off by default: an update
  /// mutates hosted state, so the operator must opt in (--allow-updates).
  bool accept_updates = false;
  /// Bounded per-daemon log of recent invalidation events. A v5 session
  /// that falls further behind than the log reaches gets one drop-all
  /// event instead of a precise stale-block list.
  int max_invalidation_log = 64;
  /// Requests a single v6 connection may have dispatched concurrently
  /// (wire v6 pipelining). Beyond this the reactor stops reading the
  /// connection until replies drain — per-connection backpressure. Pre-v6
  /// sessions are always dispatched one frame at a time.
  int max_pipeline_depth = 64;

  /// Rejects nonsensical settings (negative timeouts, zero frame bound,
  /// thread counts < 1, ...). Serve() refuses to start on a bad config
  /// instead of misbehaving later.
  Status Validate() const;
};

/// Everything Serve() needs: the endpoint, what to host (exactly one of
/// `bundle` or `catalog`), and the runtime options — the net-layer mirror
/// of the ExecOptions convention (one options bag instead of positional
/// overloads).
struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 → ephemeral; read back via NetServer::port()
  /// Single-database hosting: wrapped in a one-entry catalog named after
  /// the bundle (or "default"), which also becomes options.default_db
  /// when unset.
  std::optional<HostedBundle> bundle;
  /// Multi-tenant hosting: every database in the catalog is served.
  /// options.default_db, when set, must name a database in the catalog.
  std::unique_ptr<BundleCatalog> catalog;
  NetServerOptions options;

  static ServerConfig ForBundle(HostedBundle bundle,
                                const std::string& host = "127.0.0.1",
                                uint16_t port = 0,
                                NetServerOptions options = NetServerOptions());
  static ServerConfig ForCatalog(std::unique_ptr<BundleCatalog> catalog,
                                 const std::string& host = "127.0.0.1",
                                 uint16_t port = 0,
                                 NetServerOptions options = NetServerOptions());
};

/// The untrusted service provider as an actual network daemon: owns a
/// BundleCatalog of hosted databases (encrypted database + metadata —
/// never keys or plaintext), listens on TCP, and evaluates translated
/// queries for any number of clients against any of its databases (wire
/// v4 routes per-request; v3 sessions get default_db).
///
/// Threading model (the reactor): one acceptor thread hands accepted
/// sockets to a small set of I/O threads round-robin. Each I/O thread
/// runs an epoll loop over its connections — non-blocking reads into a
/// per-connection buffer, frame parsing, and scatter-gather writes
/// (sendmsg with one iovec per segment, so block ciphertexts are never
/// copied into a contiguous send buffer). Parsed requests are dispatched
/// to a fixed worker pool for evaluation; I/O threads never block on the
/// catalog or a join, so ten thousand idle sockets cost ten thousand
/// epoll registrations, not ten thousand threads.
///
/// Wire v6 sessions may pipeline up to max_pipeline_depth requests per
/// connection; responses carry the request's frame id and may complete
/// out of order. Pre-v6 sessions are served one frame at a time in
/// arrival order, exactly like the pre-reactor daemon. Each request
/// resolves its database through the catalog and pins the engine for the
/// duration of the call, so hot reloads and LRU evictions never break an
/// in-flight query.
///
/// Shutdown() drains gracefully: stop accepting, let every dispatched
/// request finish and its response flush, then close sessions and join.
class NetServer {
 public:
  /// The single entry point: validates config.options, builds the catalog
  /// (from `bundle` or `catalog` — exactly one), binds, and starts the
  /// reactor.
  static Result<std::unique_ptr<NetServer>> Serve(ServerConfig config);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  uint16_t port() const { return port_; }

  /// The catalog behind the daemon (reload/unload administration).
  BundleCatalog& catalog() { return *catalog_; }

  /// Current counters and latency histograms (the same numbers a remote
  /// client gets via kStatsRequest). `opts.db` selects which database the
  /// num_blocks/ciphertext_bytes fields describe (empty = default).
  NetStats stats(const NetCallOptions& opts = NetCallOptions()) const;

  /// Full metrics snapshot: the daemon's latency histograms plus the
  /// request/byte counters, mergeable across scrapes.
  obs::MetricsSnapshot SnapshotMetrics() const;

  /// SnapshotMetrics() rendered as JSON (the --metrics-json dump format).
  std::string MetricsJson() const { return SnapshotMetrics().RenderJson(); }

  /// Graceful drain; idempotent, also run by the destructor.
  void Shutdown();

 private:
  struct Conn;      // one connection's reactor state (server.cc)
  struct IoThread;  // one epoll loop's state (server.cc)
  /// A parsed request handed from an I/O thread to the worker pool.
  struct Task {
    std::shared_ptr<Conn> conn;
    Frame frame;
  };

  NetServer() = default;

  static Result<std::unique_ptr<NetServer>> Start(
      std::unique_ptr<BundleCatalog> catalog, const std::string& host,
      uint16_t port, const NetServerOptions& options);

  void AcceptLoop();
  void IoLoop(IoThread* io);
  void WorkerLoop();

  // --- I/O-thread side (each Conn is touched by exactly one IoThread) --
  void RegisterConn(IoThread* io, Socket sock);
  /// Runs a connection's full state machine: read, parse, dispatch,
  /// flush, epoll-interest update, and the drained-close checks.
  void ProcessConn(IoThread* io, const std::shared_ptr<Conn>& conn);
  /// Non-blocking read into the connection buffer. Returns false when
  /// the connection died (already closed).
  bool ReadInput(IoThread* io, const std::shared_ptr<Conn>& conn);
  /// Extracts complete frames from the read buffer into conn->parsed.
  /// Returns false on a framing violation (error queued, close pending).
  bool ParseFrames(const std::shared_ptr<Conn>& conn);
  void DispatchFrames(const std::shared_ptr<Conn>& conn);
  /// Scatter-gather flush of the output queue. Returns false when the
  /// peer is gone (connection must close).
  bool FlushOutput(Conn* conn);
  void UpdateInterest(IoThread* io, Conn* conn);
  /// Takes its own reference (by value): callers often pass the map's
  /// entry itself, which erasing would otherwise destroy mid-close.
  void CloseConn(IoThread* io, std::shared_ptr<Conn> conn);
  /// Pushes invalidation events this session has not seen yet (v5+).
  void FlushConnInvalidations(Conn* conn);
  /// Periodic sweep: idle reaping, mid-frame and stalled-write timeouts.
  void SweepConns(IoThread* io);
  void SignalIo(IoThread* io);

  // --- worker side ----------------------------------------------------
  /// Evaluates one request and enqueues the reply on the connection.
  void HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Appends a framed reply to the connection's output queue (counts
  /// bytes_sent) and wakes the owning I/O thread.
  void EnqueueReply(const std::shared_ptr<Conn>& conn, FrameParts parts);
  void EnqueueErrorReply(const std::shared_ptr<Conn>& conn,
                         const Status& error, uint8_t version,
                         uint64_t frame_id, double retry_after_ms = 0.0);
  /// Marks the request done (pipelining bookkeeping) and wakes the
  /// owning I/O thread to dispatch what the slot was blocking.
  void FinishRequest(const std::shared_ptr<Conn>& conn, uint8_t version);

  /// Appends an invalidation event to the bounded log, bumps the
  /// sequence counter, and wakes every I/O thread to push it.
  void RecordInvalidation(InvalidationEventMsg event);

  /// Maps a request's db field to a pinned resident database (empty →
  /// default_db) and counts the hit under "db.<name>.queries".
  Result<std::shared_ptr<const ResidentDb>> ResolveDb(
      const std::string& db) const;

  /// Admission gate for query-class requests. Returns true with a slot
  /// held (release with ReleaseQuery), false when the request must be
  /// shed. Blocks in the bounded wait queue when inflight is full.
  bool AdmitQuery();
  void ReleaseQuery();

  std::unique_ptr<BundleCatalog> catalog_;
  NetServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;

  /// stop_: stop accepting, reading, and dispatching (drain begins).
  /// io_stop_: set once workers drained; I/O threads flush and exit.
  std::atomic<bool> stop_{false};
  std::atomic<bool> io_stop_{false};
  std::thread acceptor_;
  std::vector<std::unique_ptr<IoThread>> io_;
  std::atomic<size_t> next_io_{0};  ///< round-robin accept placement
  std::vector<std::thread> workers_;

  /// Worker task queue (parsed requests).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> tasks_;

  /// Admission state: inflight query-class requests + waiters.
  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  int inflight_ = 0;
  int waiting_ = 0;

  /// Cache-invalidation push state. inv_seq_ counts recorded events; each
  /// v5+ session tracks how far the reactor has pushed to it.
  struct PendingInvalidation {
    uint64_t seq = 0;
    InvalidationEventMsg event;
  };
  std::mutex inv_mu_;
  std::deque<PendingInvalidation> inv_log_;
  std::atomic<uint64_t> inv_seq_{0};

  // Counters. Relaxed order: they are statistics, not synchronization.
  mutable std::atomic<uint64_t> queries_served_{0};
  mutable std::atomic<uint64_t> aggregates_served_{0};
  mutable std::atomic<uint64_t> naive_served_{0};
  mutable std::atomic<uint64_t> errors_{0};
  mutable std::atomic<uint64_t> connections_total_{0};
  mutable std::atomic<uint64_t> connections_active_{0};
  mutable std::atomic<uint64_t> bytes_received_{0};
  mutable std::atomic<uint64_t> bytes_sent_{0};
  mutable std::atomic<uint64_t> queries_shed_{0};
  mutable std::atomic<uint64_t> updates_applied_{0};

  /// Latency histograms, one per message type. The pointers are interned
  /// once at startup; workers then touch only lock-free atomics.
  mutable obs::MetricsRegistry metrics_;
  obs::Histogram* query_latency_ = nullptr;
  obs::Histogram* naive_latency_ = nullptr;
  obs::Histogram* aggregate_latency_ = nullptr;
  obs::Histogram* ping_latency_ = nullptr;
  obs::Histogram* stats_latency_ = nullptr;
  obs::Histogram* update_latency_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_SERVER_H_
