#include "net/channel.h"

namespace xcrypt {
namespace net {

Status WriteFrame(Socket& sock, MessageType type, const Bytes& payload,
                  uint8_t version, uint64_t frame_id) {
  const Bytes frame = EncodeFrame(type, payload, version, frame_id);
  return sock.SendAll(frame.data(), frame.size());
}

Result<Frame> ReadFrame(Socket& sock, uint64_t max_frame_bytes,
                        double timeout_sec, const std::atomic<bool>* cancel,
                        bool allow_idle) {
  uint8_t header[kFrameHeaderBytes];
  XCRYPT_RETURN_NOT_OK(sock.RecvAll(header, sizeof(header), timeout_sec,
                                    cancel, allow_idle));
  uint32_t payload_length = 0;
  auto frame = DecodeFrameHeader(header, max_frame_bytes, &payload_length);
  if (!frame.ok()) return frame.status();
  if (frame->version >= 6) {
    uint8_t id_buf[kFrameIdBytes];
    XCRYPT_RETURN_NOT_OK(sock.RecvAll(id_buf, sizeof(id_buf), timeout_sec,
                                      cancel, /*allow_idle=*/false));
    frame->frame_id = DecodeFrameId(id_buf);
  }
  frame->payload.resize(payload_length);
  if (payload_length > 0) {
    XCRYPT_RETURN_NOT_OK(sock.RecvAll(frame->payload.data(), payload_length,
                                      timeout_sec, cancel,
                                      /*allow_idle=*/false));
  }
  return frame;
}

}  // namespace net
}  // namespace xcrypt
