#include "net/channel.h"

namespace xcrypt {
namespace net {

Status WriteFrame(Socket& sock, MessageType type, const Bytes& payload,
                  uint8_t version) {
  const Bytes frame = EncodeFrame(type, payload, version);
  return sock.SendAll(frame.data(), frame.size());
}

Result<Frame> ReadFrame(Socket& sock, uint64_t max_frame_bytes,
                        double timeout_sec, const std::atomic<bool>* cancel,
                        bool allow_idle, const std::atomic<uint64_t>* wake,
                        uint64_t wake_seen, bool* woke) {
  uint8_t header[kFrameHeaderBytes];
  XCRYPT_RETURN_NOT_OK(sock.RecvAll(header, sizeof(header), timeout_sec,
                                    cancel, allow_idle, wake, wake_seen,
                                    woke));
  uint32_t payload_length = 0;
  auto frame = DecodeFrameHeader(header, max_frame_bytes, &payload_length);
  if (!frame.ok()) return frame.status();
  frame->payload.resize(payload_length);
  if (payload_length > 0) {
    XCRYPT_RETURN_NOT_OK(sock.RecvAll(frame->payload.data(), payload_length,
                                      timeout_sec, cancel,
                                      /*allow_idle=*/false));
  }
  return frame;
}

}  // namespace net
}  // namespace xcrypt
