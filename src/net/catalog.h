#ifndef XCRYPT_NET_CATALOG_H_
#define XCRYPT_NET_CATALOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/server.h"
#include "storage/mmap_bundle.h"
#include "storage/serializer.h"
#include "storage/update/delta.h"

namespace xcrypt {
namespace net {

struct CatalogOptions {
  CatalogOptions() {}
  /// Upper bound on file-backed databases resident in memory at once
  /// (<= 0 = unbounded). When a lazy load would exceed it, the
  /// least-recently-used unpinned database is evicted; in-flight queries
  /// holding its handle finish unharmed (shared_ptr pinning).
  int max_resident = 8;
  /// Re-fingerprint the backing file on every Get and transparently
  /// reload when it changed — an updated bundle file swaps in without
  /// restarting the daemon. Format-v3+ images compare the owner-assigned
  /// bundle generation (header-only ReadBundleHeader probe); v2 images,
  /// which carry no generation, fall back to mtime + size.
  bool hot_reload = true;
  /// Open format-v4 images through MmapBundleReader instead of an eager
  /// deserialize: index sections fault in on first query and block
  /// payloads are served straight from the mapping. v2/v3 images always
  /// load eagerly regardless of this flag.
  bool map_v4 = true;
  /// Upper bound, in bytes, on the summed ResidentBytes() of unpinned
  /// residents (<= 0 = unbounded). Checked alongside max_resident: when
  /// the sum exceeds it, LRU residents are dropped (mapped ones unmap
  /// their heap-materialized index state; a later Get faults it back in).
  /// Payload pages mapped from v4 images are clean page cache and are
  /// NOT charged — the kernel reclaims those on its own under pressure.
  int64_t memory_budget_bytes = 0;
};

/// One database resident in memory: the hosted bundle plus the engine
/// built over it. Handed out as shared_ptr<const ResidentDb>, so a reload
/// or eviction only unlinks it from the catalog — every in-flight query
/// keeps its engine (and the bundle the engine points into) alive until
/// the last handle drops.
class ResidentDb {
 public:
  const std::string& name() const { return name_; }
  /// Catalog-assigned generation: 1 on first load, bumped on every
  /// reload of the same name. (The bundle's own owner-assigned
  /// generation, if any, is at owner_generation().)
  uint64_t generation() const { return generation_; }
  /// The eagerly-deserialized bundle. Only meaningful when !is_mapped();
  /// a mapped resident keeps its state in the file mapping and this is
  /// an empty shell — go through the accessors below instead.
  const HostedBundle& bundle() const { return bundle_; }
  const ServerEngine& engine() const { return *engine_; }

  /// True when this resident serves straight from a format-v4 mapping.
  bool is_mapped() const { return mapped_ != nullptr; }
  const MmapBundleReader* mapped() const { return mapped_.get(); }

  /// Owner-assigned bundle generation (0 for generation-less v2 images).
  /// Works for both mapped and eager residents — this, not
  /// bundle().generation, is what freshness/replay checks compare.
  uint64_t owner_generation() const {
    return mapped_ != nullptr ? mapped_->generation() : bundle_.generation;
  }
  size_t num_blocks() const {
    return mapped_ != nullptr ? mapped_->BlockCount()
                              : bundle_.database.blocks.size();
  }
  int64_t ciphertext_bytes() const {
    return mapped_ != nullptr ? mapped_->TotalCiphertextBytes()
                              : bundle_.database.TotalCiphertextBytes();
  }
  /// Heap bytes this resident pins — what the catalog's memory budget
  /// charges. Eager residents count ciphertext + metadata; mapped ones
  /// count only index state materialized so far (payloads stay in the
  /// kernel's reclaimable page cache).
  int64_t ResidentBytes() const {
    if (mapped_ != nullptr) return mapped_->ResidentBytes();
    return bundle_.database.TotalCiphertextBytes() +
           static_cast<int64_t>(bundle_.metadata.ByteSize());
  }

 private:
  friend class BundleCatalog;
  ResidentDb() = default;

  std::string name_;
  uint64_t generation_ = 0;
  HostedBundle bundle_;
  /// Non-null for a mapped (format-v4, lazy) resident; the engine then
  /// reads through the mapping instead of bundle_.
  std::unique_ptr<MmapBundleReader> mapped_;
  /// Built over bundle_'s database/metadata (or over mapped_); neither
  /// must move after construction (ResidentDb is heap-pinned via
  /// shared_ptr).
  std::unique_ptr<ServerEngine> engine_;
};

/// Maps database names to lazily-loaded ServerEngines — the multi-tenant
/// heart of xcrypt_serve. Names come from a directory scan (one `.xcr`
/// bundle file per database, name = filename stem) and/or in-memory
/// bundles pinned with AddBundle. Lookup is a pure map probe: a request
/// can only ever reach a pre-scanned path, so hostile names ("../…")
/// fail with NotFound instead of touching the filesystem.
///
/// Thread-safe. A database is loaded (disk read + engine build) outside
/// the catalog lock, with a per-slot loading latch so concurrent Gets for
/// the same cold name wait for one load instead of racing N.
class BundleCatalog {
 public:
  explicit BundleCatalog(const CatalogOptions& options = CatalogOptions());

  BundleCatalog(const BundleCatalog&) = delete;
  BundleCatalog& operator=(const BundleCatalog&) = delete;

  /// Scans `dir` for `*.xcr` bundle files and registers each as a
  /// database named after its filename stem (nothing is loaded yet).
  /// Fails with NotFound if the directory cannot be read and with
  /// InvalidArgument if it holds no bundles.
  static Result<std::unique_ptr<BundleCatalog>> Open(
      const std::string& dir, const CatalogOptions& options = CatalogOptions());

  /// Registers an in-memory bundle under `name`. Pinned: never evicted,
  /// never hot-reloaded (there is no file to watch). Replaces an existing
  /// entry of the same name, bumping its generation.
  Status AddBundle(const std::string& name, HostedBundle bundle);

  /// Resolves a database, loading (or hot-reloading) it as needed. The
  /// returned handle stays valid — engine included — even if the entry is
  /// evicted or reloaded while the caller still computes with it.
  Result<std::shared_ptr<const ResidentDb>> Get(const std::string& name);

  /// Applies a delta bundle to the resident database `name`, advancing it
  /// by one generation in place: the current resident is cloned, the
  /// delta applied to the clone (all-or-nothing validation), and the
  /// result published as a fresh resident. Pinned readers keep the old
  /// ResidentDb alive via their shared_ptr; new Gets see the new one.
  /// Returns the bundle generation after the apply — also for an
  /// idempotent replay (delta already absorbed), which changes nothing.
  Result<uint64_t> ApplyDelta(const std::string& name,
                              const DeltaBundle& delta);

  /// Forces the next Get of `name` to reload from disk (no-op for pinned
  /// in-memory entries). In-flight handles are unaffected.
  Status Reload(const std::string& name);

  /// Removes `name` from the catalog entirely. In-flight handles are
  /// unaffected.
  Status Unload(const std::string& name);

  /// All registered database names, sorted.
  std::vector<std::string> List() const;

  /// How many file-backed databases are resident right now (pinned
  /// in-memory entries excluded) — the number the LRU bound applies to.
  int ResidentCount() const;

  /// Summed ResidentBytes() of unpinned residents right now — the value
  /// the memory budget is enforced against (also exported as the
  /// `catalog.resident_bytes` gauge).
  int64_t ResidentBytesTotal() const;

  /// Points the plan-cache counters of every engine built from now on at
  /// `registry` (the daemon's per-instance registry), and interns the
  /// catalog's own instruments there (`catalog.evictions` counter,
  /// `catalog.resident_bytes` gauge). Engines already resident are
  /// unaffected; set this before serving.
  void SetMetricsRegistry(obs::MetricsRegistry* registry);

 private:
  struct Slot {
    std::string path;    ///< backing file; empty = in-memory pinned entry
    bool pinned = false;
    bool loading = false;  ///< a thread is off building this engine
    uint64_t loads = 0;    ///< completed loads; source of generation()
    uint64_t last_used = 0;
    /// Fingerprint of `path` at load time. For format-v3 images the
    /// owner-assigned bundle generation is the primary freshness signal
    /// (file_has_generation = true); v2 images fall back to mtime + size.
    /// A mismatch on Get means the owner re-uploaded → hot reload.
    int64_t file_mtime_ns = 0;
    int64_t file_size = 0;
    uint64_t file_generation = 0;
    bool file_has_generation = false;
    /// The resident carries delta applies the backing file has not
    /// absorbed yet. A dirty resident must not be evicted (reloading the
    /// stale file would silently roll the updates back) and mtime churn
    /// on the stale file must not trigger a reload.
    bool dirty = false;
    std::shared_ptr<const ResidentDb> resident;  ///< null = not loaded
  };

  /// Loads `name` from `path`: sets the slot's loading latch, drops the
  /// lock for the disk read + engine build, re-locks to publish.
  Result<std::shared_ptr<const ResidentDb>> LoadSlot(
      std::unique_lock<std::mutex>& lock, const std::string& name,
      const std::string& path);

  /// Drops LRU unpinned residents until both bounds hold — max_resident
  /// (count) and memory_budget_bytes (summed ResidentBytes) — and
  /// refreshes the resident-bytes gauge (mu_ held). `keep` survives even
  /// if it is the oldest.
  void EvictIfNeeded(const std::string& keep);

  /// Summed ResidentBytes() of unpinned residents (mu_ held).
  int64_t ResidentBytesLocked() const;

  /// Stamps a freshly built engine with its bundle's owner generation
  /// (plan-cache keying; a reload to a new generation starts with an empty
  /// cache) and the daemon's metrics registry.
  void ConfigureEngine(ResidentDb* fresh) const;

  CatalogOptions options_;
  /// Registry for engines built after SetMetricsRegistry; atomic because
  /// LoadSlot builds engines outside mu_.
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
  /// Catalog-level instruments interned from the registry (stable
  /// pointers for the registry's lifetime); touched only under mu_.
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* resident_gauge_ = nullptr;
  /// Serializes delta appliers per catalog (applies are rare relative to
  /// reads; readers never take this). Held across the clone + apply.
  std::mutex apply_mu_;
  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  uint64_t use_tick_ = 0;
  std::map<std::string, Slot> slots_;
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_CATALOG_H_
