#ifndef XCRYPT_NET_SOCKET_H_
#define XCRYPT_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace xcrypt {
namespace net {

/// Thin RAII wrapper over a POSIX TCP socket. Network failures surface as
/// Status::Unavailable (the one retryable code); nothing here throws.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Connects to host:port, failing with Unavailable after
  /// `connect_timeout_sec`. The returned socket is blocking with
  /// `io_timeout_sec` applied to sends.
  static Result<Socket> Dial(const std::string& host, uint16_t port,
                             double connect_timeout_sec,
                             double io_timeout_sec);

  /// Binds and listens on host:port (port 0 picks an ephemeral port).
  static Result<Socket> Listen(const std::string& host, uint16_t port,
                               int backlog);

  /// Waits up to `tick_sec` for a pending connection. Returns an invalid
  /// Socket when none arrived (so callers can poll a stop flag between
  /// ticks); Unavailable only on real accept failures.
  Result<Socket> Accept(double tick_sec);

  /// The locally bound port (after Listen, resolves ephemeral port 0).
  Result<uint16_t> LocalPort() const;

  /// Writes all n bytes; Unavailable on timeout or a dropped peer.
  Status SendAll(const uint8_t* data, size_t n);

  /// Reads exactly n bytes, polling in short ticks so `cancel` (when
  /// non-null) aborts promptly. `timeout_sec` bounds the whole read;
  /// with `allow_idle` the clock only starts once the first byte
  /// arrives — used by clients to wait indefinitely for the start of the
  /// next frame on a persistent connection while still bounding how long
  /// a partial frame may stall.
  Status RecvAll(uint8_t* data, size_t n, double timeout_sec,
                 const std::atomic<bool>* cancel = nullptr,
                 bool allow_idle = false);

  /// Toggles O_NONBLOCK. The reactor puts accepted connections in
  /// non-blocking mode and drives them from epoll readiness.
  Status SetNonBlocking(bool enable);

 private:
  int fd_ = -1;
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_SOCKET_H_
