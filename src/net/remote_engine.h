#ifndef XCRYPT_NET_REMOTE_ENGINE_H_
#define XCRYPT_NET_REMOTE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace xcrypt {
namespace net {

struct RemoteOptions {
  RemoteOptions() {}
  double connect_timeout_sec = 5.0;
  double request_timeout_sec = 30.0;
  /// Total tries per request (1 first attempt + up to N-1 retries).
  /// Only transient transport failures (Unavailable) are retried, with
  /// exponential backoff; queries are read-only, so replaying one on a
  /// fresh connection is always safe. Server-reported query errors are
  /// deterministic and returned immediately.
  int max_attempts = 4;
  double initial_backoff_ms = 50.0;
  double max_backoff_ms = 2000.0;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// ServerEngine's network twin: the same QueryEngine surface, evaluated
/// by an xcrypt_serve daemon on the other end of a TCP connection. The
/// connection is persistent and re-established transparently; DasSystem
/// swaps this in for the in-process engine without touching the protocol
/// of §6.
class RemoteServerEngine : public QueryEngine {
 public:
  /// Dials host:port and verifies the endpoint speaks the protocol (a
  /// ping round trip), so a misconfigured address fails here rather than
  /// on the first query.
  static Result<std::unique_ptr<RemoteServerEngine>> Connect(
      const std::string& host, uint16_t port,
      const RemoteOptions& options = RemoteOptions());

  /// Per-call measurements (round trip, wire bytes, retries, the daemon's
  /// reported processing time and phase decomposition) come back inside
  /// the result, so any number of threads can share one stub — they
  /// serialize on the connection but never on a shared mutable
  /// measurement. A context's trace receives the call as recorded
  /// "server" (+ phases) and "transmit" spans.
  Result<EngineQueryResult> Execute(
      const TranslatedQuery& query, obs::QueryContext* ctx = nullptr,
      const std::vector<BlockAdvert>* cached_blocks = nullptr) const override;
  Result<EngineQueryResult> ExecuteNaive(obs::QueryContext* ctx = nullptr)
      const override;
  Result<EngineAggregateResult> ExecuteAggregate(
      const TranslatedQuery& query, AggregateKind kind,
      const std::string& index_token, obs::QueryContext* ctx = nullptr,
      const std::vector<BlockAdvert>* cached_blocks = nullptr) const override;

  Status Ping() const;
  Result<NetStats> Stats() const;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  RemoteServerEngine(std::string host, uint16_t port, RemoteOptions options)
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Sends one request and reads the reply, retrying transient failures
  /// per RemoteOptions. On success fills the wire facts of `stats`.
  Result<Frame> RoundTrip(MessageType type, const Bytes& payload,
                          MessageType expected_reply,
                          EngineCallStats* stats) const;

  std::string host_;
  uint16_t port_ = 0;
  RemoteOptions options_;

  /// One request in flight at a time per connection; concurrent callers
  /// serialize here. All per-call state lives on the caller's stack.
  mutable std::mutex mu_;
  mutable Socket sock_;
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_REMOTE_ENGINE_H_
