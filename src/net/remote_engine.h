#ifndef XCRYPT_NET_REMOTE_ENGINE_H_
#define XCRYPT_NET_REMOTE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "privacy/fetcher.h"

namespace xcrypt {
namespace net {

/// Retry discipline for one remote stub, grouped as one value so
/// DasSystem's ClientTuning carries the whole policy instead of four
/// loose knobs.
struct RetryPolicy {
  RetryPolicy() {}
  /// Total tries per request (1 first attempt + up to N-1 retries).
  /// Only transient failures (Unavailable) are retried — transport drops
  /// and admission-control sheds alike — with decorrelated-jitter
  /// backoff; queries are read-only, so replaying one is always safe.
  /// Other server-reported errors are deterministic and returned
  /// immediately.
  int max_attempts = 4;
  double initial_backoff_ms = 50.0;
  double max_backoff_ms = 2000.0;
  /// Seed for the backoff jitter (0 = derive one from the clock and this
  /// stub's address). Fixed seeds make retry schedules reproducible in
  /// tests; distinct stubs still get distinct streams.
  uint64_t backoff_seed = 0;

  /// Rejects max_attempts < 1 and negative backoffs.
  Status Validate() const;
};

struct RemoteOptions {
  RemoteOptions() {}
  double connect_timeout_sec = 5.0;
  double request_timeout_sec = 30.0;
  /// Retry discipline; see RetryPolicy.
  RetryPolicy retry;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Which of the daemon's databases this session targets (wire v4).
  /// Empty = the daemon's default database. A per-call ExecOptions::db
  /// overrides it for that call.
  std::string database;

  /// Rejects nonsensical settings (non-positive timeouts, zero frame
  /// bound, a bad retry policy). Connect() refuses a bad config up front
  /// instead of misbehaving on the first retry.
  Status Validate() const;
};

/// One decorrelated-jitter backoff step (AWS style): uniform in
/// [base, max(base, prev*3)], capped at `cap`. Consecutive sleeps are
/// randomized AND grow from the previous sleep, so a fleet of clients
/// retrying a recovering daemon spreads out instead of stampeding in
/// lockstep the way deterministic exponential backoff does.
double NextBackoffMs(double prev_ms, double base_ms, double cap_ms, Rng& rng);

/// ServerEngine's network twin: the same QueryEngine surface, evaluated
/// by an xcrypt_serve daemon on the other end of a TCP connection. The
/// connection is persistent and re-established transparently; DasSystem
/// swaps this in for the in-process engine without touching the protocol
/// of §6.
///
/// The transport is multiplexed (wire v6): every request carries a frame
/// id, a dedicated reader thread matches responses back to callers by id,
/// and any number of threads sharing one stub have their requests in
/// flight on the single connection concurrently — they serialize only on
/// the send syscall, never for the daemon's processing time.
class RemoteServerEngine : public QueryEngine, public privacy::PirTransport {
 public:
  /// Validates options, dials host:port, and verifies the endpoint speaks
  /// the protocol (a ping round trip), so a misconfigured address fails
  /// here rather than on the first query.
  static Result<std::unique_ptr<RemoteServerEngine>> Connect(
      const std::string& host, uint16_t port,
      const RemoteOptions& options = RemoteOptions());

  ~RemoteServerEngine() override;

  /// Per-call measurements (round trip, wire bytes, retries, the daemon's
  /// reported processing time and phase decomposition) come back inside
  /// the result, so any number of threads can share one stub without
  /// sharing any mutable measurement. A context's trace receives the call
  /// as recorded "server" (+ phases) and "transmit" spans.
  Result<EngineQueryResult> Execute(
      const TranslatedQuery& query,
      const ExecOptions& opts = ExecOptions()) const override;
  Result<EngineQueryResult> ExecuteNaive(
      const ExecOptions& opts = ExecOptions()) const override;
  Result<EngineAggregateResult> ExecuteAggregate(
      const TranslatedQuery& query, AggregateKind kind,
      const std::string& index_token,
      const ExecOptions& opts = ExecOptions()) const override;

  Status Ping() const;
  /// Daemon counters; `opts.db` selects which database's size fields the
  /// reply describes (empty = the session database, or daemon default).
  Result<NetStats> Stats(const NetCallOptions& opts = NetCallOptions()) const;

  /// privacy::PirTransport over the wire (v7): setup downloads a hosted
  /// section's params + hint, fetch ships one selection vector. Both
  /// target the session database and retry per RetryPolicy like every
  /// other call.
  Result<privacy::PirTransport::Setup> PirSetup(
      const std::string& section) override;
  Result<std::vector<uint32_t>> PirFetch(
      const std::string& section, std::span<const uint32_t> query) override;

  /// Ships a serialized delta bundle (storage/update/delta.h) to the
  /// daemon and returns the bundle generation after the apply; `opts.db`
  /// routes it (empty = session database). Safe to retry: a replayed
  /// delta is recognized by its generation and applied at most once (the
  /// retry gets the same generation back).
  Result<uint64_t> PushDelta(
      const Bytes& delta_image,
      const NetCallOptions& opts = NetCallOptions()) const;

  /// Installs the handler for server-pushed invalidation events (wire
  /// v5). Runs on the transport's reader thread, between response
  /// dispatches — it must be fast and must not call back into this
  /// engine.
  void SetInvalidationSink(
      std::function<void(const InvalidationEventMsg&)> sink) {
    std::lock_guard<std::mutex> lock(sink_mu_);
    invalidation_sink_ = std::move(sink);
  }

  /// Installs the per-attempt cache-advert filter. Retried requests call
  /// it with the originally advertised blocks and send what it returns —
  /// DasSystem wires it to the live block cache, so an invalidation
  /// arriving mid-backoff shrinks the advert before the re-send instead
  /// of promising the daemon blocks the client no longer holds. The
  /// refresher must only ever REMOVE adverts: an added advert could be
  /// stubbed by the daemon with no pinned payload behind it.
  void SetAdvertRefresher(
      std::function<std::vector<BlockAdvert>(std::vector<BlockAdvert>)>
          refresher) {
    std::lock_guard<std::mutex> lock(sink_mu_);
    advert_refresher_ = std::move(refresher);
  }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  /// The session's target database ("" = daemon default).
  const std::string& database() const { return options_.database; }

  /// High-water mark of requests this stub has had in flight on one
  /// connection at once (observability: proves pipelining overlap).
  int max_inflight_observed() const {
    return inflight_peak_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingCall;  // one caller's wait state (remote_engine.cc)
  struct Transport;    // one live connection + reader (remote_engine.cc)

  RemoteServerEngine(std::string host, uint16_t port, RemoteOptions options);

  /// Returns the live transport, dialing a fresh connection (and starting
  /// its reader thread) when there is none.
  Result<std::shared_ptr<Transport>> GetTransport() const;
  /// Marks a transport dead: fails every pending call with `error`, stops
  /// its reader, and forgets it so the next attempt dials fresh.
  void FailTransport(Transport* transport, const Status& error) const;
  /// Reader-thread body: matches response frames to pending calls by
  /// frame id and dispatches unsolicited invalidation events.
  void ReaderLoop(Transport* transport) const;

  /// Sends one request and awaits its reply by frame id, retrying
  /// transient failures per RetryPolicy — including Unavailable error
  /// frames (admission sheds), whose retry-after hint floors the next
  /// backoff. `payload_builder` runs once per attempt, so a retry can
  /// re-derive state that may have moved during the backoff (the cache
  /// advert, via the advert refresher). On success fills the wire facts
  /// of `stats`.
  Result<Frame> RoundTrip(MessageType type,
                          const std::function<Bytes()>& payload_builder,
                          MessageType expected_reply,
                          EngineCallStats* stats) const;

  /// The advert list one attempt should carry: the call's original
  /// adverts, filtered through the installed refresher (if any).
  std::vector<BlockAdvert> AdvertsFor(
      std::span<const BlockAdvert> original) const;

  /// The probe-batch path of Execute (wire v7): mixes the real query into
  /// opts.cover_queries at a jitter-chosen position, sends one
  /// kProbeBatchRequest, and keeps only the real probe's answer.
  Result<EngineQueryResult> ExecuteBatch(const TranslatedQuery& query,
                                         const ExecOptions& opts) const;

  /// The db field a call should carry: per-call override or the session
  /// database.
  const std::string& DbFor(const ExecOptions& opts) const {
    return opts.db.empty() ? options_.database : opts.db;
  }

  std::string host_;
  uint16_t port_ = 0;
  RemoteOptions options_;

  /// Guards transport_ (swap on reconnect). Calls in flight hold their
  /// own shared_ptr, so a reconnect never yanks the connection from under
  /// a concurrent caller.
  mutable std::mutex mu_;
  mutable std::shared_ptr<Transport> transport_;

  /// Jitter source for retry backoff; its own lock so concurrent
  /// retries never serialize on the transport.
  mutable std::mutex rng_mu_;
  mutable Rng backoff_rng_;

  mutable std::mutex sink_mu_;
  std::function<void(const InvalidationEventMsg&)> invalidation_sink_;
  std::function<std::vector<BlockAdvert>(std::vector<BlockAdvert>)>
      advert_refresher_;

  /// Reader threads are detached (a reader failing its own transport must
  /// not join itself); the destructor waits for all of them to exit so no
  /// reader outlives the engine.
  mutable std::mutex readers_mu_;
  mutable std::condition_variable readers_cv_;
  mutable int live_readers_ = 0;

  mutable std::atomic<int> inflight_now_{0};
  mutable std::atomic<int> inflight_peak_{0};
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_REMOTE_ENGINE_H_
