#ifndef XCRYPT_NET_REMOTE_ENGINE_H_
#define XCRYPT_NET_REMOTE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "core/server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace xcrypt {
namespace net {

struct RemoteOptions {
  RemoteOptions() {}
  double connect_timeout_sec = 5.0;
  double request_timeout_sec = 30.0;
  /// Total tries per request (1 first attempt + up to N-1 retries).
  /// Only transient failures (Unavailable) are retried — transport drops
  /// and admission-control sheds alike — with decorrelated-jitter
  /// backoff; queries are read-only, so replaying one is always safe.
  /// Other server-reported errors are deterministic and returned
  /// immediately.
  int max_attempts = 4;
  double initial_backoff_ms = 50.0;
  double max_backoff_ms = 2000.0;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Which of the daemon's databases this session targets (wire v4).
  /// Empty = the daemon's default database. A per-call ExecOptions::db
  /// overrides it for that call.
  std::string database;
  /// Seed for the backoff jitter (0 = derive one from the clock and this
  /// stub's address). Fixed seeds make retry schedules reproducible in
  /// tests; distinct stubs still get distinct streams.
  uint64_t backoff_seed = 0;

  /// Rejects nonsensical settings (non-positive timeouts, zero frame
  /// bound, max_attempts < 1, negative backoffs). Connect() refuses a bad
  /// config up front instead of misbehaving on the first retry.
  Status Validate() const;
};

/// One decorrelated-jitter backoff step (AWS style): uniform in
/// [base, max(base, prev*3)], capped at `cap`. Consecutive sleeps are
/// randomized AND grow from the previous sleep, so a fleet of clients
/// retrying a recovering daemon spreads out instead of stampeding in
/// lockstep the way deterministic exponential backoff does.
double NextBackoffMs(double prev_ms, double base_ms, double cap_ms, Rng& rng);

/// ServerEngine's network twin: the same QueryEngine surface, evaluated
/// by an xcrypt_serve daemon on the other end of a TCP connection. The
/// connection is persistent and re-established transparently; DasSystem
/// swaps this in for the in-process engine without touching the protocol
/// of §6.
///
/// The transport is multiplexed (wire v6): every request carries a frame
/// id, a dedicated reader thread matches responses back to callers by id,
/// and any number of threads sharing one stub have their requests in
/// flight on the single connection concurrently — they serialize only on
/// the send syscall, never for the daemon's processing time.
class RemoteServerEngine : public QueryEngine {
 public:
  /// Validates options, dials host:port, and verifies the endpoint speaks
  /// the protocol (a ping round trip), so a misconfigured address fails
  /// here rather than on the first query.
  static Result<std::unique_ptr<RemoteServerEngine>> Connect(
      const std::string& host, uint16_t port,
      const RemoteOptions& options = RemoteOptions());

  ~RemoteServerEngine() override;

  /// Per-call measurements (round trip, wire bytes, retries, the daemon's
  /// reported processing time and phase decomposition) come back inside
  /// the result, so any number of threads can share one stub without
  /// sharing any mutable measurement. A context's trace receives the call
  /// as recorded "server" (+ phases) and "transmit" spans.
  Result<EngineQueryResult> Execute(
      const TranslatedQuery& query,
      const ExecOptions& opts = ExecOptions()) const override;
  Result<EngineQueryResult> ExecuteNaive(
      const ExecOptions& opts = ExecOptions()) const override;
  Result<EngineAggregateResult> ExecuteAggregate(
      const TranslatedQuery& query, AggregateKind kind,
      const std::string& index_token,
      const ExecOptions& opts = ExecOptions()) const override;

  Status Ping() const;
  /// Daemon counters; `opts.db` selects which database's size fields the
  /// reply describes (empty = the session database, or daemon default).
  Result<NetStats> Stats(const NetCallOptions& opts = NetCallOptions()) const;

  /// Ships a serialized delta bundle (storage/update/delta.h) to the
  /// daemon and returns the bundle generation after the apply; `opts.db`
  /// routes it (empty = session database). Safe to retry: a replayed
  /// delta is recognized by its generation and applied at most once (the
  /// retry gets the same generation back).
  Result<uint64_t> PushDelta(
      const Bytes& delta_image,
      const NetCallOptions& opts = NetCallOptions()) const;

  /// Installs the handler for server-pushed invalidation events (wire
  /// v5). Runs on the transport's reader thread, between response
  /// dispatches — it must be fast and must not call back into this
  /// engine.
  void SetInvalidationSink(
      std::function<void(const InvalidationEventMsg&)> sink) {
    std::lock_guard<std::mutex> lock(sink_mu_);
    invalidation_sink_ = std::move(sink);
  }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  /// The session's target database ("" = daemon default).
  const std::string& database() const { return options_.database; }

  /// High-water mark of requests this stub has had in flight on one
  /// connection at once (observability: proves pipelining overlap).
  int max_inflight_observed() const {
    return inflight_peak_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingCall;  // one caller's wait state (remote_engine.cc)
  struct Transport;    // one live connection + reader (remote_engine.cc)

  RemoteServerEngine(std::string host, uint16_t port, RemoteOptions options);

  /// Returns the live transport, dialing a fresh connection (and starting
  /// its reader thread) when there is none.
  Result<std::shared_ptr<Transport>> GetTransport() const;
  /// Marks a transport dead: fails every pending call with `error`, stops
  /// its reader, and forgets it so the next attempt dials fresh.
  void FailTransport(Transport* transport, const Status& error) const;
  /// Reader-thread body: matches response frames to pending calls by
  /// frame id and dispatches unsolicited invalidation events.
  void ReaderLoop(Transport* transport) const;

  /// Sends one request and awaits its reply by frame id, retrying
  /// transient failures per RemoteOptions — including Unavailable error
  /// frames (admission sheds), whose retry-after hint floors the next
  /// backoff. On success fills the wire facts of `stats`.
  Result<Frame> RoundTrip(MessageType type, const Bytes& payload,
                          MessageType expected_reply,
                          EngineCallStats* stats) const;

  /// The db field a call should carry: per-call override or the session
  /// database.
  const std::string& DbFor(const ExecOptions& opts) const {
    return opts.db.empty() ? options_.database : opts.db;
  }

  std::string host_;
  uint16_t port_ = 0;
  RemoteOptions options_;

  /// Guards transport_ (swap on reconnect). Calls in flight hold their
  /// own shared_ptr, so a reconnect never yanks the connection from under
  /// a concurrent caller.
  mutable std::mutex mu_;
  mutable std::shared_ptr<Transport> transport_;

  /// Jitter source for retry backoff; its own lock so concurrent
  /// retries never serialize on the transport.
  mutable std::mutex rng_mu_;
  mutable Rng backoff_rng_;

  mutable std::mutex sink_mu_;
  std::function<void(const InvalidationEventMsg&)> invalidation_sink_;

  /// Reader threads are detached (a reader failing its own transport must
  /// not join itself); the destructor waits for all of them to exit so no
  /// reader outlives the engine.
  mutable std::mutex readers_mu_;
  mutable std::condition_variable readers_cv_;
  mutable int live_readers_ = 0;

  mutable std::atomic<int> inflight_now_{0};
  mutable std::atomic<int> inflight_peak_{0};
};

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_REMOTE_ENGINE_H_
