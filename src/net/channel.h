#ifndef XCRYPT_NET_CHANNEL_H_
#define XCRYPT_NET_CHANNEL_H_

#include <atomic>

#include "net/socket.h"
#include "net/wire.h"

namespace xcrypt {
namespace net {

/// Sends one complete frame. A daemon passes the version of the request
/// frame it is answering, so a v3 session gets v3 replies. `frame_id` is
/// written only at version ≥ 6 (see wire.h).
Status WriteFrame(Socket& sock, MessageType type, const Bytes& payload,
                  uint8_t version = kWireVersion, uint64_t frame_id = 0);

/// Receives one complete frame: header first (validated before the
/// payload is allocated, so a corrupt length can never balloon memory),
/// then the v6 frame id when the header announces version ≥ 6, then
/// exactly the announced payload. `allow_idle` lets a reader wait
/// indefinitely for the *start* of the next frame on a persistent
/// connection while still bounding how long a partial frame may stall.
/// Framing violations (bad magic/type/length) return Corruption or
/// Unsupported; transport failures return Unavailable.
Result<Frame> ReadFrame(Socket& sock, uint64_t max_frame_bytes,
                        double timeout_sec,
                        const std::atomic<bool>* cancel = nullptr,
                        bool allow_idle = false);

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_CHANNEL_H_
