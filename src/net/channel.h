#ifndef XCRYPT_NET_CHANNEL_H_
#define XCRYPT_NET_CHANNEL_H_

#include <atomic>

#include "net/socket.h"
#include "net/wire.h"

namespace xcrypt {
namespace net {

/// Sends one complete frame. A daemon passes the version of the request
/// frame it is answering, so a v3 session gets v3 replies.
Status WriteFrame(Socket& sock, MessageType type, const Bytes& payload,
                  uint8_t version = kWireVersion);

/// Receives one complete frame: header first (validated before the
/// payload is allocated, so a corrupt length can never balloon memory),
/// then exactly the announced payload. `allow_idle` lets a server wait
/// indefinitely for the *start* of the next request on a persistent
/// connection while still bounding how long a partial frame may stall.
/// Framing violations (bad magic/type/length) return Corruption or
/// Unsupported; transport failures return Unavailable.
///
/// `wake`/`wake_seen`/`woke` thread through to Socket::RecvAll: when the
/// counter moves off `wake_seen` before the first header byte arrives,
/// the call returns Unavailable with *woke = true so a server can push
/// invalidation events between requests without abandoning the read loop.
Result<Frame> ReadFrame(Socket& sock, uint64_t max_frame_bytes,
                        double timeout_sec,
                        const std::atomic<bool>* cancel = nullptr,
                        bool allow_idle = false,
                        const std::atomic<uint64_t>* wake = nullptr,
                        uint64_t wake_seen = 0, bool* woke = nullptr);

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_CHANNEL_H_
