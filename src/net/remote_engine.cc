#include "net/remote_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/timer.h"
#include "net/channel.h"

namespace xcrypt {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/// Enters one finished remote call into the caller's trace: the daemon's
/// processing time as a recorded "server" span (with its phase
/// decomposition as children) and the remainder of the round trip as
/// "transmit".
void RecordRemoteSpans(obs::QueryContext* ctx, const EngineCallStats& stats) {
  obs::Trace* trace = obs::TraceOf(ctx);
  if (trace == nullptr) return;
  const int server_id = trace->Record("server", stats.server_process_us,
                                      obs::Trace::kNoParent);
  for (const obs::PhaseTiming& phase : stats.server_phases) {
    trace->Record(phase.name, phase.elapsed_us, server_id);
  }
  trace->Record("transmit",
                std::max(0.0, stats.round_trip_us - stats.server_process_us),
                obs::Trace::kNoParent);
}

uint64_t DeriveBackoffSeed(const RemoteOptions& options, const void* self) {
  if (options.retry.backoff_seed != 0) return options.retry.backoff_seed;
  uint64_t state =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      reinterpret_cast<uintptr_t>(self);
  return SplitMix64(state);
}

}  // namespace

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (!(initial_backoff_ms >= 0)) {  // also rejects NaN
    return Status::InvalidArgument("initial_backoff_ms must be >= 0");
  }
  if (!(max_backoff_ms >= 0)) {
    return Status::InvalidArgument("max_backoff_ms must be >= 0");
  }
  return Status::Ok();
}

Status RemoteOptions::Validate() const {
  if (!(connect_timeout_sec > 0)) {  // also rejects NaN
    return Status::InvalidArgument("connect_timeout_sec must be > 0");
  }
  if (!(request_timeout_sec > 0)) {
    return Status::InvalidArgument("request_timeout_sec must be > 0");
  }
  XCRYPT_RETURN_NOT_OK(retry.Validate());
  if (max_frame_bytes == 0) {
    return Status::InvalidArgument("max_frame_bytes must be > 0");
  }
  return Status::Ok();
}

double NextBackoffMs(double prev_ms, double base_ms, double cap_ms, Rng& rng) {
  if (base_ms <= 0.0) base_ms = 1.0;
  const double upper = std::max(base_ms, prev_ms * 3.0);
  return std::min(cap_ms, rng.UniformDouble(base_ms, upper));
}

/// One caller's rendezvous with the reader thread. The caller waits on
/// `cv`; the reader (or FailTransport) fills the result and sets `done`.
struct RemoteServerEngine::PendingCall {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status error = Status::Ok();  ///< transport-level failure, when !ok
  Frame reply;                  ///< valid when done && error.ok()
};

/// One live connection: the socket, the id-keyed pending-call table, and
/// the (detached) reader thread's control state. Calls in flight hold a
/// shared_ptr; the reader holds none (the engine's destructor waits for
/// readers via live_readers_, so the raw pointer it runs on stays valid).
struct RemoteServerEngine::Transport {
  Socket sock;
  std::atomic<bool> stop{false};

  std::mutex mu;  ///< guards pending, next_id, broken
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> pending;
  uint64_t next_id = 1;  ///< 0 is reserved for unsolicited frames
  bool broken = false;

  /// Serializes the send syscall only, so concurrent callers' frames
  /// never interleave on the wire; waiting for replies is lock-free.
  std::mutex send_mu;
};

RemoteServerEngine::RemoteServerEngine(std::string host, uint16_t port,
                                       RemoteOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      backoff_rng_(DeriveBackoffSeed(options_, this)) {}

RemoteServerEngine::~RemoteServerEngine() {
  std::shared_ptr<Transport> transport;
  {
    std::lock_guard<std::mutex> lock(mu_);
    transport = std::move(transport_);
  }
  if (transport) transport->stop.store(true, std::memory_order_release);
  transport.reset();
  // Readers of this and every previously failed transport notice stop
  // within one poll tick; wait them out so none outlives the engine.
  std::unique_lock<std::mutex> lock(readers_mu_);
  readers_cv_.wait(lock, [this] { return live_readers_ == 0; });
}

Result<std::unique_ptr<RemoteServerEngine>> RemoteServerEngine::Connect(
    const std::string& host, uint16_t port, const RemoteOptions& options) {
  XCRYPT_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<RemoteServerEngine> engine(
      new RemoteServerEngine(host, port, options));
  XCRYPT_RETURN_NOT_OK(engine->Ping());
  return engine;
}

Result<std::shared_ptr<RemoteServerEngine::Transport>>
RemoteServerEngine::GetTransport() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (transport_ != nullptr) return transport_;
  auto sock = Socket::Dial(host_, port_, options_.connect_timeout_sec,
                           options_.request_timeout_sec);
  if (!sock.ok()) return sock.status();
  auto transport = std::make_shared<Transport>();
  transport->sock = std::move(*sock);
  {
    std::lock_guard<std::mutex> rlock(readers_mu_);
    ++live_readers_;
  }
  // The lambda's shared_ptr keeps the Transport alive for the reader's
  // whole run even after the engine forgets it on failure.
  std::thread([this, transport] {
    ReaderLoop(transport.get());
    std::lock_guard<std::mutex> rlock(readers_mu_);
    --live_readers_;
    readers_cv_.notify_all();
  }).detach();
  transport_ = transport;
  return transport_;
}

void RemoteServerEngine::FailTransport(Transport* transport,
                                       const Status& error) const {
  transport->stop.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<PendingCall>> pending;
  {
    std::lock_guard<std::mutex> lock(transport->mu);
    transport->broken = true;
    pending.reserve(transport->pending.size());
    for (auto& [id, call] : transport->pending) pending.push_back(call);
    transport->pending.clear();
  }
  const Status failure =
      error.ok() ? Status::Unavailable("transport failed") : error;
  for (const auto& call : pending) {
    {
      std::lock_guard<std::mutex> lock(call->mu);
      call->error = failure;
      call->done = true;
    }
    call->cv.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (transport_.get() == transport) transport_.reset();
}

void RemoteServerEngine::ReaderLoop(Transport* transport) const {
  while (!transport->stop.load(std::memory_order_acquire)) {
    // allow_idle: a multiplexed session is legitimately quiet between
    // calls; only a *partial* frame is held to the request timeout.
    auto frame = ReadFrame(transport->sock, options_.max_frame_bytes,
                           options_.request_timeout_sec, &transport->stop,
                           /*allow_idle=*/true);
    if (!frame.ok()) {
      FailTransport(transport, frame.status());
      return;
    }
    if (frame->type == MessageType::kInvalidationEvent) {
      auto event = DecodeInvalidationEvent(frame->payload);
      if (!event.ok()) {
        FailTransport(transport, event.status());
        return;
      }
      std::function<void(const InvalidationEventMsg&)> sink;
      {
        std::lock_guard<std::mutex> lock(sink_mu_);
        sink = invalidation_sink_;
      }
      if (sink) sink(*event);
      continue;
    }
    std::shared_ptr<PendingCall> call;
    {
      std::lock_guard<std::mutex> lock(transport->mu);
      auto it = transport->pending.find(frame->frame_id);
      if (it != transport->pending.end()) {
        call = it->second;
        transport->pending.erase(it);
      }
    }
    if (call == nullptr) continue;  // stray id: its caller already gave up
    {
      std::lock_guard<std::mutex> lock(call->mu);
      call->reply = std::move(*frame);
      call->done = true;
    }
    call->cv.notify_all();
  }
}

Result<Frame> RemoteServerEngine::RoundTrip(
    MessageType type, const std::function<Bytes()>& payload_builder,
    MessageType expected_reply, EngineCallStats* stats) const {
  stats->transport = EngineCallStats::Transport::kRemote;
  Status last_error = Status::Unavailable("no attempt made");
  double backoff_ms = 0.0;        // previous sleep; 0 before any retry
  double server_hint_ms = 0.0;    // daemon-suggested floor (wire v4)

  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter spreads a fleet of retrying clients out;
      // a server-sent retry-after hint floors the sleep so a shedding
      // daemon is not hammered faster than it asked for.
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        backoff_ms =
            NextBackoffMs(backoff_ms, options_.retry.initial_backoff_ms,
                          options_.retry.max_backoff_ms, backoff_rng_);
      }
      backoff_ms = std::max(
          backoff_ms, std::min(server_hint_ms, options_.retry.max_backoff_ms));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      ++stats->retries;
    }
    server_hint_ms = 0.0;
    // Rebuilt each attempt: state the payload embeds (the cache advert)
    // may have moved during the backoff — see SetAdvertRefresher.
    const Bytes payload = payload_builder();

    auto maybe_transport = GetTransport();
    if (!maybe_transport.ok()) {
      last_error = maybe_transport.status();
      if (last_error.code() == StatusCode::kUnavailable) continue;
      return last_error;
    }
    std::shared_ptr<Transport> transport = std::move(*maybe_transport);

    auto call = std::make_shared<PendingCall>();
    uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(transport->mu);
      if (transport->broken) {
        last_error = Status::Unavailable("connection failed");
        continue;
      }
      id = transport->next_id++;
      transport->pending.emplace(id, call);
    }
    const int now = inflight_now_.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = inflight_peak_.load(std::memory_order_relaxed);
    while (now > peak && !inflight_peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }

    Stopwatch watch;
    Status sent;
    {
      std::lock_guard<std::mutex> lock(transport->send_mu);
      const Bytes frame = EncodeFrame(type, payload, kWireVersion, id);
      sent = transport->sock.SendAll(frame.data(), frame.size());
    }
    if (!sent.ok()) {
      inflight_now_.fetch_sub(1, std::memory_order_relaxed);
      FailTransport(transport.get(), sent);
      last_error = sent;
      if (last_error.code() == StatusCode::kUnavailable) continue;
      return last_error;
    }

    Frame reply;
    {
      std::unique_lock<std::mutex> lock(call->mu);
      const bool done = call->cv.wait_until(
          lock,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.request_timeout_sec)),
          [&call] { return call->done; });
      inflight_now_.fetch_sub(1, std::memory_order_relaxed);
      if (!done) {
        lock.unlock();
        {
          std::lock_guard<std::mutex> tlock(transport->mu);
          transport->pending.erase(id);
        }
        // The connection has an unanswered id on it; a late reply would
        // desynchronize accounting, so retire the whole transport.
        last_error = Status::Unavailable("request timed out");
        FailTransport(transport.get(), last_error);
        continue;
      }
      if (!call->error.ok()) {
        last_error = call->error;
        if (last_error.code() == StatusCode::kUnavailable) continue;
        return last_error;
      }
      reply = std::move(call->reply);
    }

    stats->round_trip_us = watch.ElapsedMicros();
    stats->bytes_sent = static_cast<int64_t>(FrameHeaderBytes(kWireVersion) +
                                             payload.size());
    stats->bytes_received = static_cast<int64_t>(
        FrameHeaderBytes(reply.version) + reply.payload.size());
    if (reply.type == MessageType::kError) {
      double hint_ms = 0.0;
      last_error = DecodeError(reply.payload, reply.version, &hint_ms);
      if (last_error.code() == StatusCode::kUnavailable) {
        // Admission-control shed: transient by definition, and the frame
        // arrived intact — keep the connection and retry after the
        // suggested backoff.
        server_hint_ms = hint_ms;
        continue;
      }
      // Any other server-side failure is deterministic; retrying
      // cannot help.
      return last_error;
    }
    if (reply.type != expected_reply) {
      const Status error = Status::Corruption(
          std::string("expected ") + MessageTypeName(expected_reply) +
          ", got " + MessageTypeName(reply.type));
      FailTransport(transport.get(), error);
      return error;
    }
    return reply;
  }
  return Status::Unavailable(
      "request failed after " + std::to_string(options_.retry.max_attempts) +
      " attempts to " + host_ + ":" + std::to_string(port_) + " (" +
      last_error.ToString() + ")");
}

std::vector<BlockAdvert> RemoteServerEngine::AdvertsFor(
    std::span<const BlockAdvert> original) const {
  std::vector<BlockAdvert> adverts(original.begin(), original.end());
  std::function<std::vector<BlockAdvert>(std::vector<BlockAdvert>)> refresher;
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    refresher = advert_refresher_;
  }
  if (refresher && !adverts.empty()) adverts = refresher(std::move(adverts));
  return adverts;
}

Result<EngineQueryResult> RemoteServerEngine::Execute(
    const TranslatedQuery& query, const ExecOptions& opts) const {
  if (opts.ctx != nullptr && opts.ctx->Expired()) {
    return Status::Unavailable("deadline expired before remote call");
  }
  if (!opts.cover_queries.empty()) return ExecuteBatch(query, opts);
  EngineQueryResult out;
  auto reply = RoundTrip(
      MessageType::kQueryRequest,
      [&] {
        return EncodeQueryRequest(query, AdvertsFor(opts.cached_blocks),
                                  DbFor(opts));
      },
      MessageType::kQueryResponse, &out.stats);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeQueryResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  out.stats.server_process_us = msg->server_process_us;
  out.stats.server_phases = std::move(msg->server_phases);
  RecordRemoteSpans(opts.ctx, out.stats);
  out.response = std::move(msg->response);
  return out;
}

Result<EngineQueryResult> RemoteServerEngine::ExecuteBatch(
    const TranslatedQuery& query, const ExecOptions& opts) const {
  // The real probe's position is fresh jitter per call: a fixed slot (or
  // any slot correlated with send order) would be a trivial tell.
  size_t position = 0;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    position = static_cast<size_t>(
        backoff_rng_.UniformU64(0, opts.cover_queries.size()));
  }
  std::vector<TranslatedQuery> probes;
  probes.reserve(opts.cover_queries.size() + 1);
  probes.insert(probes.end(), opts.cover_queries.begin(),
                opts.cover_queries.begin() + position);
  probes.push_back(query);
  probes.insert(probes.end(), opts.cover_queries.begin() + position,
                opts.cover_queries.end());

  EngineQueryResult out;
  Stopwatch watch;
  auto reply = RoundTrip(
      MessageType::kProbeBatchRequest,
      [&] {
        return EncodeProbeBatchRequest(probes, AdvertsFor(opts.cached_blocks),
                                       DbFor(opts),
                                       opts.privacy.pad_responses);
      },
      MessageType::kProbeBatchResponse, &out.stats);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeProbeBatchResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  if (msg->answers.size() != probes.size()) {
    return Status::Corruption("probe batch answer count mismatch");
  }
  obs::MetricsRegistry::Global()
      .GetCounter("privacy.decoys_sent")
      ->Add(static_cast<uint64_t>(opts.cover_queries.size()));
  // Cover answers are discarded here, undecrypted; only the real probe's
  // answer leaves this frame.
  QueryResponseMsg& real = msg->answers[position];
  out.stats.server_process_us = real.server_process_us;
  out.stats.server_phases = std::move(real.server_phases);
  RecordRemoteSpans(opts.ctx, out.stats);
  if (obs::Trace* trace = obs::TraceOf(opts.ctx)) {
    trace->Record("decoy-batch", watch.ElapsedMicros(), obs::Trace::kNoParent);
  }
  out.response = std::move(real.response);
  return out;
}

Result<EngineQueryResult> RemoteServerEngine::ExecuteNaive(
    const ExecOptions& opts) const {
  if (opts.ctx != nullptr && opts.ctx->Expired()) {
    return Status::Unavailable("deadline expired before remote call");
  }
  EngineQueryResult out;
  auto reply = RoundTrip(MessageType::kNaiveRequest,
                         [&] { return EncodeNaiveRequest(DbFor(opts)); },
                         MessageType::kQueryResponse, &out.stats);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeQueryResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  out.stats.server_process_us = msg->server_process_us;
  out.stats.server_phases = std::move(msg->server_phases);
  RecordRemoteSpans(opts.ctx, out.stats);
  out.response = std::move(msg->response);
  return out;
}

Result<EngineAggregateResult> RemoteServerEngine::ExecuteAggregate(
    const TranslatedQuery& query, AggregateKind kind,
    const std::string& index_token, const ExecOptions& opts) const {
  if (opts.ctx != nullptr && opts.ctx->Expired()) {
    return Status::Unavailable("deadline expired before remote call");
  }
  EngineAggregateResult out;
  auto reply = RoundTrip(
      MessageType::kAggregateRequest,
      [&] {
        return EncodeAggregateRequest(query, kind, index_token,
                                      AdvertsFor(opts.cached_blocks),
                                      DbFor(opts));
      },
      MessageType::kAggregateResponse, &out.stats);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeAggregateResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  out.stats.server_process_us = msg->server_process_us;
  out.stats.server_phases = std::move(msg->server_phases);
  RecordRemoteSpans(opts.ctx, out.stats);
  out.response = std::move(msg->response);
  return out;
}

Status RemoteServerEngine::Ping() const {
  EngineCallStats stats;
  auto reply = RoundTrip(MessageType::kPingRequest, [] { return Bytes(); },
                         MessageType::kPingResponse, &stats);
  return reply.ok() ? Status::Ok() : reply.status();
}

Result<uint64_t> RemoteServerEngine::PushDelta(
    const Bytes& delta_image, const NetCallOptions& opts) const {
  UpdateRequestMsg msg;
  msg.db = opts.db.empty() ? options_.database : opts.db;
  msg.delta = delta_image;
  EngineCallStats stats;
  auto reply = RoundTrip(MessageType::kUpdateRequest,
                         [&] { return EncodeUpdateRequest(msg); },
                         MessageType::kUpdateResponse, &stats);
  if (!reply.ok()) return reply.status();
  auto response = DecodeUpdateResponse(reply->payload);
  if (!response.ok()) return response.status();
  return response->generation;
}

Result<NetStats> RemoteServerEngine::Stats(const NetCallOptions& opts) const {
  EngineCallStats stats;
  auto reply = RoundTrip(
      MessageType::kStatsRequest,
      [&] {
        return EncodeStatsRequest(opts.db.empty() ? options_.database
                                                  : opts.db);
      },
      MessageType::kStatsResponse, &stats);
  if (!reply.ok()) return reply.status();
  return DecodeStats(reply->payload, reply->version);
}

Result<privacy::PirTransport::Setup> RemoteServerEngine::PirSetup(
    const std::string& section) {
  PirSetupRequestMsg msg;
  msg.db = options_.database;
  msg.section = section;
  EngineCallStats stats;
  auto reply = RoundTrip(MessageType::kPirSetupRequest,
                         [&] { return EncodePirSetupRequest(msg); },
                         MessageType::kPirSetupResponse, &stats);
  if (!reply.ok()) return reply.status();
  auto response = DecodePirSetupResponse(reply->payload);
  if (!response.ok()) return response.status();
  privacy::PirTransport::Setup setup;
  setup.params = response->params;
  setup.hint = std::move(response->hint);
  return setup;
}

Result<std::vector<uint32_t>> RemoteServerEngine::PirFetch(
    const std::string& section, std::span<const uint32_t> query) {
  PirFetchRequestMsg msg;
  msg.db = options_.database;
  msg.section = section;
  msg.query.assign(query.begin(), query.end());
  EngineCallStats stats;
  auto reply = RoundTrip(MessageType::kPirFetchRequest,
                         [&] { return EncodePirFetchRequest(msg); },
                         MessageType::kPirFetchResponse, &stats);
  if (!reply.ok()) return reply.status();
  auto response = DecodePirFetchResponse(reply->payload);
  if (!response.ok()) return response.status();
  return std::move(response->answer);
}

}  // namespace net
}  // namespace xcrypt
