#include "net/remote_engine.h"

#include <algorithm>
#include <thread>

#include "common/timer.h"
#include "net/channel.h"

namespace xcrypt {
namespace net {

Result<std::unique_ptr<RemoteServerEngine>> RemoteServerEngine::Connect(
    const std::string& host, uint16_t port, const RemoteOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  std::unique_ptr<RemoteServerEngine> engine(
      new RemoteServerEngine(host, port, options));
  XCRYPT_RETURN_NOT_OK(engine->Ping());
  return engine;
}

Result<Frame> RemoteServerEngine::RoundTrip(MessageType type,
                                            const Bytes& payload,
                                            MessageType expected_reply) const {
  std::lock_guard<std::mutex> lock(mu_);
  RemoteCallInfo info;
  Status last_error = Status::Unavailable("no attempt made");
  double backoff_ms = options_.initial_backoff_ms;

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2.0, options_.max_backoff_ms);
      ++info.retries;
    }
    if (!sock_.valid()) {
      auto sock = Socket::Dial(host_, port_, options_.connect_timeout_sec,
                               options_.request_timeout_sec);
      if (!sock.ok()) {
        last_error = sock.status();
        if (last_error.code() == StatusCode::kUnavailable) continue;
        return last_error;
      }
      sock_ = std::move(*sock);
    }

    Stopwatch watch;
    Status sent = WriteFrame(sock_, type, payload);
    if (sent.ok()) {
      auto reply = ReadFrame(sock_, options_.max_frame_bytes,
                             options_.request_timeout_sec);
      if (reply.ok()) {
        info.round_trip_us = watch.ElapsedMicros();
        info.bytes_sent =
            static_cast<int64_t>(kFrameHeaderBytes + payload.size());
        info.bytes_received =
            static_cast<int64_t>(kFrameHeaderBytes + reply->payload.size());
        if (reply->type == MessageType::kError) {
          // Deterministic server-side failure; retrying cannot help.
          return DecodeError(reply->payload);
        }
        if (reply->type != expected_reply) {
          sock_.Close();  // stream state is suspect
          return Status::Corruption(
              std::string("expected ") + MessageTypeName(expected_reply) +
              ", got " + MessageTypeName(reply->type));
        }
        last_ = info;
        return std::move(*reply);
      }
      last_error = reply.status();
    } else {
      last_error = sent;
    }
    // The connection failed mid-request; drop it so the next attempt
    // dials fresh. Only transient transport errors are worth retrying.
    sock_.Close();
    if (last_error.code() != StatusCode::kUnavailable) return last_error;
  }
  return Status::Unavailable(
      "request failed after " + std::to_string(options_.max_attempts) +
      " attempts to " + host_ + ":" + std::to_string(port_) + " (" +
      last_error.ToString() + ")");
}

Result<ServerResponse> RemoteServerEngine::Execute(
    const TranslatedQuery& query) const {
  auto reply = RoundTrip(MessageType::kQueryRequest, EncodeQueryRequest(query),
                         MessageType::kQueryResponse);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeQueryResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  last_.server_process_us = msg->server_process_us;
  return std::move(msg->response);
}

Result<ServerResponse> RemoteServerEngine::ExecuteNaive() const {
  auto reply = RoundTrip(MessageType::kNaiveRequest, Bytes(),
                         MessageType::kQueryResponse);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeQueryResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  last_.server_process_us = msg->server_process_us;
  return std::move(msg->response);
}

Result<AggregateResponse> RemoteServerEngine::ExecuteAggregate(
    const TranslatedQuery& query, AggregateKind kind,
    const std::string& index_token) const {
  auto reply = RoundTrip(MessageType::kAggregateRequest,
                         EncodeAggregateRequest(query, kind, index_token),
                         MessageType::kAggregateResponse);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeAggregateResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  last_.server_process_us = msg->server_process_us;
  return std::move(msg->response);
}

Status RemoteServerEngine::Ping() const {
  auto reply =
      RoundTrip(MessageType::kPingRequest, Bytes(), MessageType::kPingResponse);
  return reply.ok() ? Status::Ok() : reply.status();
}

Result<NetStats> RemoteServerEngine::Stats() const {
  auto reply = RoundTrip(MessageType::kStatsRequest, Bytes(),
                         MessageType::kStatsResponse);
  if (!reply.ok()) return reply.status();
  return DecodeStats(reply->payload);
}

}  // namespace net
}  // namespace xcrypt
