#include "net/remote_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/timer.h"
#include "net/channel.h"

namespace xcrypt {
namespace net {

namespace {

/// Enters one finished remote call into the caller's trace: the daemon's
/// processing time as a recorded "server" span (with its phase
/// decomposition as children) and the remainder of the round trip as
/// "transmit".
void RecordRemoteSpans(obs::QueryContext* ctx, const EngineCallStats& stats) {
  obs::Trace* trace = obs::TraceOf(ctx);
  if (trace == nullptr) return;
  const int server_id = trace->Record("server", stats.server_process_us,
                                      obs::Trace::kNoParent);
  for (const obs::PhaseTiming& phase : stats.server_phases) {
    trace->Record(phase.name, phase.elapsed_us, server_id);
  }
  trace->Record("transmit",
                std::max(0.0, stats.round_trip_us - stats.server_process_us),
                obs::Trace::kNoParent);
}

uint64_t DeriveBackoffSeed(const RemoteOptions& options, const void* self) {
  if (options.backoff_seed != 0) return options.backoff_seed;
  uint64_t state =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      reinterpret_cast<uintptr_t>(self);
  return SplitMix64(state);
}

}  // namespace

double NextBackoffMs(double prev_ms, double base_ms, double cap_ms, Rng& rng) {
  if (base_ms <= 0.0) base_ms = 1.0;
  const double upper = std::max(base_ms, prev_ms * 3.0);
  return std::min(cap_ms, rng.UniformDouble(base_ms, upper));
}

RemoteServerEngine::RemoteServerEngine(std::string host, uint16_t port,
                                       RemoteOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      backoff_rng_(DeriveBackoffSeed(options_, this)) {}

Result<std::unique_ptr<RemoteServerEngine>> RemoteServerEngine::Connect(
    const std::string& host, uint16_t port, const RemoteOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  std::unique_ptr<RemoteServerEngine> engine(
      new RemoteServerEngine(host, port, options));
  XCRYPT_RETURN_NOT_OK(engine->Ping());
  return engine;
}

Result<Frame> RemoteServerEngine::RoundTrip(MessageType type,
                                            const Bytes& payload,
                                            MessageType expected_reply,
                                            EngineCallStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  stats->transport = EngineCallStats::Transport::kRemote;
  Status last_error = Status::Unavailable("no attempt made");
  double backoff_ms = 0.0;        // previous sleep; 0 before any retry
  double server_hint_ms = 0.0;    // daemon-suggested floor (wire v4)

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter spreads a fleet of retrying clients out;
      // a server-sent retry-after hint floors the sleep so a shedding
      // daemon is not hammered faster than it asked for.
      backoff_ms = NextBackoffMs(backoff_ms, options_.initial_backoff_ms,
                                 options_.max_backoff_ms, backoff_rng_);
      backoff_ms = std::max(backoff_ms, std::min(server_hint_ms,
                                                 options_.max_backoff_ms));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      ++stats->retries;
    }
    server_hint_ms = 0.0;
    if (!sock_.valid()) {
      auto sock = Socket::Dial(host_, port_, options_.connect_timeout_sec,
                               options_.request_timeout_sec);
      if (!sock.ok()) {
        last_error = sock.status();
        if (last_error.code() == StatusCode::kUnavailable) continue;
        return last_error;
      }
      sock_ = std::move(*sock);
    }

    Stopwatch watch;
    Status sent = WriteFrame(sock_, type, payload);
    if (sent.ok()) {
      auto reply = ReadFrame(sock_, options_.max_frame_bytes,
                             options_.request_timeout_sec);
      // The daemon may push invalidation events ahead of (or between)
      // replies; they belong to the session, not to this request. Consume
      // and dispatch each, then keep reading for the actual reply.
      int64_t event_bytes = 0;
      while (reply.ok() &&
             reply->type == MessageType::kInvalidationEvent) {
        auto event = DecodeInvalidationEvent(reply->payload);
        if (!event.ok()) {
          sock_.Close();
          return event.status();
        }
        event_bytes +=
            static_cast<int64_t>(kFrameHeaderBytes + reply->payload.size());
        if (invalidation_sink_) invalidation_sink_(*event);
        reply = ReadFrame(sock_, options_.max_frame_bytes,
                          options_.request_timeout_sec);
      }
      if (reply.ok()) {
        stats->round_trip_us = watch.ElapsedMicros();
        stats->bytes_sent =
            static_cast<int64_t>(kFrameHeaderBytes + payload.size());
        stats->bytes_received =
            event_bytes +
            static_cast<int64_t>(kFrameHeaderBytes + reply->payload.size());
        if (reply->type == MessageType::kError) {
          double hint_ms = 0.0;
          last_error = DecodeError(reply->payload, reply->version, &hint_ms);
          if (last_error.code() == StatusCode::kUnavailable) {
            // Admission-control shed: transient by definition. The frame
            // arrived intact, so the session is still aligned — keep the
            // connection and retry after the suggested backoff.
            server_hint_ms = hint_ms;
            continue;
          }
          // Any other server-side failure is deterministic; retrying
          // cannot help.
          return last_error;
        }
        if (reply->type != expected_reply) {
          sock_.Close();  // stream state is suspect
          return Status::Corruption(
              std::string("expected ") + MessageTypeName(expected_reply) +
              ", got " + MessageTypeName(reply->type));
        }
        return std::move(*reply);
      }
      last_error = reply.status();
    } else {
      last_error = sent;
    }
    // The connection failed mid-request; drop it so the next attempt
    // dials fresh. Only transient transport errors are worth retrying.
    sock_.Close();
    if (last_error.code() != StatusCode::kUnavailable) return last_error;
  }
  return Status::Unavailable(
      "request failed after " + std::to_string(options_.max_attempts) +
      " attempts to " + host_ + ":" + std::to_string(port_) + " (" +
      last_error.ToString() + ")");
}

Result<EngineQueryResult> RemoteServerEngine::Execute(
    const TranslatedQuery& query, const ExecOptions& opts) const {
  if (opts.ctx != nullptr && opts.ctx->Expired()) {
    return Status::Unavailable("deadline expired before remote call");
  }
  static const std::vector<BlockAdvert> kNoAdverts;
  EngineQueryResult out;
  auto reply = RoundTrip(
      MessageType::kQueryRequest,
      EncodeQueryRequest(query,
                         opts.cached_blocks != nullptr ? *opts.cached_blocks
                                                       : kNoAdverts,
                         DbFor(opts)),
      MessageType::kQueryResponse, &out.stats);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeQueryResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  out.stats.server_process_us = msg->server_process_us;
  out.stats.server_phases = std::move(msg->server_phases);
  RecordRemoteSpans(opts.ctx, out.stats);
  out.response = std::move(msg->response);
  return out;
}

Result<EngineQueryResult> RemoteServerEngine::ExecuteNaive(
    const ExecOptions& opts) const {
  if (opts.ctx != nullptr && opts.ctx->Expired()) {
    return Status::Unavailable("deadline expired before remote call");
  }
  EngineQueryResult out;
  auto reply = RoundTrip(MessageType::kNaiveRequest,
                         EncodeNaiveRequest(DbFor(opts)),
                         MessageType::kQueryResponse, &out.stats);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeQueryResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  out.stats.server_process_us = msg->server_process_us;
  out.stats.server_phases = std::move(msg->server_phases);
  RecordRemoteSpans(opts.ctx, out.stats);
  out.response = std::move(msg->response);
  return out;
}

Result<EngineAggregateResult> RemoteServerEngine::ExecuteAggregate(
    const TranslatedQuery& query, AggregateKind kind,
    const std::string& index_token, const ExecOptions& opts) const {
  if (opts.ctx != nullptr && opts.ctx->Expired()) {
    return Status::Unavailable("deadline expired before remote call");
  }
  static const std::vector<BlockAdvert> kNoAdverts;
  EngineAggregateResult out;
  auto reply = RoundTrip(
      MessageType::kAggregateRequest,
      EncodeAggregateRequest(query, kind, index_token,
                             opts.cached_blocks != nullptr
                                 ? *opts.cached_blocks
                                 : kNoAdverts,
                             DbFor(opts)),
      MessageType::kAggregateResponse, &out.stats);
  if (!reply.ok()) return reply.status();
  auto msg = DecodeAggregateResponse(reply->payload);
  if (!msg.ok()) return msg.status();
  out.stats.server_process_us = msg->server_process_us;
  out.stats.server_phases = std::move(msg->server_phases);
  RecordRemoteSpans(opts.ctx, out.stats);
  out.response = std::move(msg->response);
  return out;
}

Status RemoteServerEngine::Ping() const {
  EngineCallStats stats;
  auto reply = RoundTrip(MessageType::kPingRequest, Bytes(),
                         MessageType::kPingResponse, &stats);
  return reply.ok() ? Status::Ok() : reply.status();
}

Result<uint64_t> RemoteServerEngine::PushDelta(const Bytes& delta_image,
                                               const std::string& db) const {
  UpdateRequestMsg msg;
  msg.db = db.empty() ? options_.database : db;
  msg.delta = delta_image;
  EngineCallStats stats;
  auto reply = RoundTrip(MessageType::kUpdateRequest, EncodeUpdateRequest(msg),
                         MessageType::kUpdateResponse, &stats);
  if (!reply.ok()) return reply.status();
  auto response = DecodeUpdateResponse(reply->payload);
  if (!response.ok()) return response.status();
  return response->generation;
}

Result<NetStats> RemoteServerEngine::Stats(const std::string& db) const {
  EngineCallStats stats;
  auto reply = RoundTrip(
      MessageType::kStatsRequest,
      EncodeStatsRequest(db.empty() ? options_.database : db),
      MessageType::kStatsResponse, &stats);
  if (!reply.ok()) return reply.status();
  return DecodeStats(reply->payload, reply->version);
}

}  // namespace net
}  // namespace xcrypt
