#ifndef XCRYPT_NET_WIRE_H_
#define XCRYPT_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/aggregate.h"
#include "core/server.h"
#include "core/translated_query.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "privacy/pir.h"

namespace xcrypt {
namespace net {

/// The service-layer wire protocol (Figure 1's client/server link made
/// real). Every message travels as one frame:
///
///   +-------+---------+------+----------------+--------------------+
///   | magic | version | type | payload length |      payload       |
///   |  u32  |   u8    |  u8  |      u32       |  `length` bytes    |
///   +-------+---------+------+----------------+--------------------+
///
/// All integers little-endian, strings/blobs u32-length-prefixed — the
/// same conventions as the storage image format (storage/serializer.cc),
/// sharing common/binary_io.h. Payload encodings are versioned as a whole
/// via the header byte: an endpoint speaking a different version rejects
/// the frame with Unsupported instead of guessing.

inline constexpr uint32_t kWireMagic = 0x54454E58;  // "XNET" on the wire
/// v2: responses carry the server's span-phase decomposition; stats carry
/// per-message-type latency histograms.
/// v3: query/aggregate requests advertise the client's cached blocks as
/// (id, generation) pairs; responses carry each block's generation and an
/// id-only stub list (cached_ids) for advertised blocks the server chose
/// not to re-ship.
/// v4: multi-tenant routing — query/aggregate/naive/stats requests carry a
/// database name (appended at the tail, so every v3 field keeps its
/// offset); stats responses add shed/queue-depth counters and the name of
/// the database they describe; error frames add a server-suggested
/// retry-after hint in milliseconds.
/// v5: incremental updates — clients may push a delta bundle
/// (kUpdateRequest/kUpdateResponse), and the daemon pushes unsolicited
/// kInvalidationEvent frames so connected clients drop cache entries for
/// blocks a delta changed. The three new message types are v5-only; v3/v4
/// sessions never receive them.
/// v6: pipelining — a u64 frame id follows the fixed header (the payload
/// length still counts payload bytes only). Requests carry a client-chosen
/// id which the daemon echoes in the response, so one connection can have
/// several requests in flight and responses may complete out of order.
/// Unsolicited frames (invalidation events) and errors raised outside any
/// request carry id 0, which clients never assign to a request. v3–v5
/// frames have no id; the daemon serializes those sessions as before.
/// v7: access-pattern protection (DESIGN.md §17) — probe batches
/// (kProbeBatchRequest/Response) carry k+1 equal-size translated-query
/// entries of which one is real, and the PIR messages
/// (kPirSetup/kPirFetch) serve private selection fetches over small hot
/// sections. The six new message types are v7-only; older sessions never
/// see them and run exactly as before.
inline constexpr uint8_t kWireVersion = 7;
/// Oldest version a daemon still accepts. v3 frames decode with the db
/// name defaulted to empty, which the daemon maps to its configured
/// default database — so pre-catalog clients keep working.
inline constexpr uint8_t kMinWireVersion = 3;
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 1 + 4;
/// Size of the v6 frame id that follows the fixed header.
inline constexpr size_t kFrameIdBytes = 8;

/// Bytes preceding the payload for a frame of `version`: the fixed header
/// plus, from v6 on, the frame id.
constexpr size_t FrameHeaderBytes(uint8_t version) {
  return kFrameHeaderBytes + (version >= 6 ? kFrameIdBytes : 0);
}

/// Upper bound on a single frame's payload. A header announcing more is
/// rejected before any allocation — the guard against a corrupted or
/// hostile length prefix. 256 MiB comfortably fits a naive-method reply
/// for the evaluation corpora while staying far below memory limits.
inline constexpr uint64_t kDefaultMaxFrameBytes = 256ull << 20;

enum class MessageType : uint8_t {
  kPingRequest = 1,
  kPingResponse = 2,
  kQueryRequest = 3,       ///< TranslatedQuery
  kQueryResponse = 4,      ///< ServerResponse + server timing
  kNaiveRequest = 5,       ///< db name (v4); answered with kQueryResponse
  kAggregateRequest = 6,   ///< TranslatedQuery + kind + index token
  kAggregateResponse = 7,  ///< AggregateResponse + server timing
  kStatsRequest = 8,       ///< db name (v4)
  kStatsResponse = 9,      ///< NetStats
  kError = 10,             ///< Status code + message
  kInvalidationEvent = 11,  ///< server-pushed stale-block notice (v5)
  kUpdateRequest = 12,      ///< delta bundle image (v5)
  kUpdateResponse = 13,     ///< new bundle generation after apply (v5)
  kProbeBatchRequest = 14,  ///< k+1 uniform probes, one real (v7)
  kProbeBatchResponse = 15, ///< per-probe answers, optionally padded (v7)
  kPirSetupRequest = 16,    ///< section name (v7)
  kPirSetupResponse = 17,   ///< PirParams + hint (v7)
  kPirFetchRequest = 18,    ///< section + selection vector (v7)
  kPirFetchResponse = 19,   ///< answer vector (v7)
};

const char* MessageTypeName(MessageType type);

/// One decoded frame. `version` is the header's version byte (within
/// [kMinWireVersion, kWireVersion]); payload codecs take it so a daemon
/// can decode v3 and v4 sessions side by side and answer each in kind.
struct Frame {
  MessageType type = MessageType::kError;
  uint8_t version = kWireVersion;
  /// Request/response correlation id (wire v6). Always 0 for frames
  /// framed at version ≤ 5 and for unsolicited v6 frames.
  uint64_t frame_id = 0;
  Bytes payload;
};

/// Per-call options for the net surface's maintenance operations
/// (RemoteServerEngine::Stats/PushDelta, NetServer::stats), mirroring the
/// ExecOptions::db convention so the net API has exactly one way to name
/// a database.
struct NetCallOptions {
  /// Target database; empty = the endpoint's default database.
  std::string db;
};

/// Server-side counters reported by kStatsResponse, plus (since wire v2)
/// the daemon's per-message-type latency histograms. Histogram snapshots
/// merge associatively, so scrapes from several daemons or intervals can
/// be combined client-side.
struct NetStats {
  uint64_t queries_served = 0;
  uint64_t aggregates_served = 0;
  uint64_t naive_served = 0;
  uint64_t errors = 0;
  uint64_t connections_total = 0;
  uint64_t connections_active = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t num_blocks = 0;
  uint64_t ciphertext_bytes = 0;
  /// Requests refused with Unavailable by admission control (wire v4).
  uint64_t queries_shed = 0;
  /// Requests currently waiting for an admission slot (wire v4).
  uint64_t queue_depth = 0;
  /// Which database num_blocks/ciphertext_bytes describe (wire v4): the
  /// one named in the stats request, or the daemon's default.
  std::string database;
  /// Resident bundle generation of `database` (wire v5); 0 when unknown
  /// (no database resolved, or a v2 image that carries no generation).
  /// Owners sync on this at attach so deltas build against the server's
  /// actual base.
  uint64_t db_generation = 0;
  /// Delta bundles applied across all databases (wire v5).
  uint64_t updates_applied = 0;
  /// Named latency histograms (e.g. "query_us", "aggregate_us").
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> latency;
};

// --- framing ------------------------------------------------------------

/// Serializes a complete frame (header [+ frame id at v6] + payload).
/// `version` must lie in [kMinWireVersion, kWireVersion]; a daemon answers
/// each session with the version its request arrived in. `frame_id` is
/// written only when `version` ≥ 6.
Bytes EncodeFrame(MessageType type, const Bytes& payload,
                  uint8_t version = kWireVersion, uint64_t frame_id = 0);

/// Parses the fixed frame header and validates magic, version, message
/// type, and payload length against `max_frame_bytes`. On success returns
/// the frame with its payload still empty; for version ≥ 6 the caller
/// next reads kFrameIdBytes (see DecodeFrameId), then `payload_length`
/// bytes. `buf` must hold kFrameHeaderBytes.
Result<Frame> DecodeFrameHeader(const uint8_t* buf, uint64_t max_frame_bytes,
                                uint32_t* payload_length);

/// Reads the little-endian u64 frame id that follows a v6 header. `buf`
/// must hold kFrameIdBytes.
uint64_t DecodeFrameId(const uint8_t* buf);

/// Parses a complete frame from a contiguous buffer (tests, fuzzing).
Result<Frame> DecodeFrame(const Bytes& buf, uint64_t max_frame_bytes);

/// A frame assembled as scatter-gather segments for writev: segment 0 is
/// the header (plus frame id at v6), the rest concatenate to the payload.
/// Large block ciphertexts become their own segments — moved, never
/// copied into one contiguous send buffer.
using FrameParts = std::vector<Bytes>;

/// Total bytes across all segments (header + payload).
uint64_t FramePartsBytes(const FrameParts& parts);

/// Frames pre-built payload segments: prepends the header segment with
/// the summed payload length. Flattening the result is byte-identical to
/// EncodeFrame over the concatenated payload.
FrameParts EncodeFrameParts(MessageType type, std::vector<Bytes> payload,
                            uint8_t version = kWireVersion,
                            uint64_t frame_id = 0);

// --- payload codecs -----------------------------------------------------
//
// Every Decode* rejects malformed input with Corruption (truncation, bad
// enum values, impossible counts) and never over-allocates: element
// counts are checked against the bytes actually present before any
// reserve.

struct QueryRequestMsg {
  TranslatedQuery query;
  /// Blocks the client already holds decrypted (wire v3); the server may
  /// answer with id-only stubs for any of these whose generation matches.
  std::vector<BlockAdvert> cached;
  /// Target database (wire v4); empty = the daemon's default database.
  std::string db;
};
Bytes EncodeQueryRequest(const TranslatedQuery& query,
                         const std::vector<BlockAdvert>& cached = {},
                         const std::string& db = std::string(),
                         uint8_t version = kWireVersion);
Result<QueryRequestMsg> DecodeQueryRequest(const Bytes& payload,
                                           uint8_t version = kWireVersion);

/// kNaiveRequest: empty payload at v3; carries the database name at v4.
struct NaiveRequestMsg {
  std::string db;
};
Bytes EncodeNaiveRequest(const std::string& db = std::string(),
                         uint8_t version = kWireVersion);
Result<NaiveRequestMsg> DecodeNaiveRequest(const Bytes& payload,
                                           uint8_t version = kWireVersion);

/// kStatsRequest: empty payload at v3; carries the database name at v4
/// (selects which database's size counters the reply describes).
struct StatsRequestMsg {
  std::string db;
};
Bytes EncodeStatsRequest(const std::string& db = std::string(),
                         uint8_t version = kWireVersion);
Result<StatsRequestMsg> DecodeStatsRequest(const Bytes& payload,
                                           uint8_t version = kWireVersion);

struct QueryResponseMsg {
  ServerResponse response;
  double server_process_us = 0.0;
  /// The daemon's decomposition of server_process_us into named phases
  /// (empty when the daemon ran the call untraced).
  std::vector<obs::PhaseTiming> server_phases;
};
Bytes EncodeQueryResponse(const ServerResponse& response,
                          double server_process_us,
                          const std::vector<obs::PhaseTiming>& server_phases =
                              {});
/// Scatter-gather variant: block ciphertexts at or above the internal
/// detach threshold are moved into their own payload segments instead of
/// copied. Concatenating the segments yields exactly the
/// EncodeQueryResponse bytes. Consumes `response`.
std::vector<Bytes> EncodeQueryResponseParts(
    ServerResponse&& response, double server_process_us,
    const std::vector<obs::PhaseTiming>& server_phases = {});
Result<QueryResponseMsg> DecodeQueryResponse(const Bytes& payload);

struct AggregateRequestMsg {
  TranslatedQuery query;
  AggregateKind kind = AggregateKind::kCount;
  std::string index_token;
  std::vector<BlockAdvert> cached;  ///< wire v3 cache advertisement
  std::string db;                   ///< wire v4 target database
};
Bytes EncodeAggregateRequest(const TranslatedQuery& query, AggregateKind kind,
                             const std::string& index_token,
                             const std::vector<BlockAdvert>& cached = {},
                             const std::string& db = std::string(),
                             uint8_t version = kWireVersion);
Result<AggregateRequestMsg> DecodeAggregateRequest(
    const Bytes& payload, uint8_t version = kWireVersion);

struct AggregateResponseMsg {
  AggregateResponse response;
  double server_process_us = 0.0;
  std::vector<obs::PhaseTiming> server_phases;
};
Bytes EncodeAggregateResponse(const AggregateResponse& response,
                              double server_process_us,
                              const std::vector<obs::PhaseTiming>&
                                  server_phases = {});
/// Scatter-gather variant of EncodeAggregateResponse; see
/// EncodeQueryResponseParts. Consumes `response`.
std::vector<Bytes> EncodeAggregateResponseParts(
    AggregateResponse&& response, double server_process_us,
    const std::vector<obs::PhaseTiming>& server_phases = {});
Result<AggregateResponseMsg> DecodeAggregateResponse(const Bytes& payload);

Bytes EncodeStats(const NetStats& stats, uint8_t version = kWireVersion);
Result<NetStats> DecodeStats(const Bytes& payload,
                             uint8_t version = kWireVersion);

/// kInvalidationEvent (v5): pushed by the daemon, never solicited. Tells
/// a connected client that `db` advanced to `db_generation` and which of
/// its cached blocks are now stale. `drop_all` covers the cases where a
/// precise list is unavailable (bundle replaced wholesale, or the daemon's
/// invalidation log was outrun) — the client empties its cache for `db`.
struct InvalidationEventMsg {
  std::string db;
  uint64_t db_generation = 0;
  bool drop_all = false;
  /// Stale blocks as (id, new generation) pairs; empty when drop_all.
  std::vector<BlockAdvert> blocks;
};
Bytes EncodeInvalidationEvent(const InvalidationEventMsg& event);
Result<InvalidationEventMsg> DecodeInvalidationEvent(const Bytes& payload);

/// kUpdateRequest (v5): an owner pushes a serialized DeltaBundle image
/// (storage/update/delta.h). The daemon treats the image as opaque bytes
/// at the wire layer; the update path deserializes and validates it.
struct UpdateRequestMsg {
  std::string db;  ///< target database; empty = the daemon's default
  Bytes delta;     ///< SerializeDelta output, opaque to the framing layer
};
Bytes EncodeUpdateRequest(const UpdateRequestMsg& msg);
Result<UpdateRequestMsg> DecodeUpdateRequest(const Bytes& payload);

/// kUpdateResponse (v5): the bundle generation after the delta applied
/// (also returned for an idempotent replay that changed nothing).
struct UpdateResponseMsg {
  uint64_t generation = 0;
};
Bytes EncodeUpdateResponse(const UpdateResponseMsg& msg);
Result<UpdateResponseMsg> DecodeUpdateResponse(const Bytes& payload);

// --- access-pattern protection (wire v7) --------------------------------

/// Standalone codec for one translated query, shared by the probe-batch
/// entries below and by privacy::ShapeLog persistence. Byte-identical to
/// the steps section of EncodeQueryRequest.
Bytes EncodeTranslatedQuery(const TranslatedQuery& query);
Result<TranslatedQuery> DecodeTranslatedQuery(const Bytes& payload);

/// kProbeBatchRequest: k+1 probes of which exactly one is real — the
/// server cannot tell which, because every entry is encoded into the same
/// fixed-size slot (the quantum-rounded maximum of the batch, see
/// privacy::PadToQuantum) and all entries share one advert list and one
/// database. Decoding recovers the probes in order; the real one's
/// position is client-side knowledge only.
struct ProbeBatchRequestMsg {
  std::vector<TranslatedQuery> probes;
  std::vector<BlockAdvert> cached;  ///< shared by every entry
  std::string db;
  /// Asks the daemon to pad response entries to their common maximum too.
  bool pad_responses = true;
};
Bytes EncodeProbeBatchRequest(std::span<const TranslatedQuery> probes,
                              const std::vector<BlockAdvert>& cached = {},
                              const std::string& db = std::string(),
                              bool pad_responses = true);
Result<ProbeBatchRequestMsg> DecodeProbeBatchRequest(const Bytes& payload);

/// kProbeBatchResponse: one QueryResponseMsg per probe, in request order.
/// With padding on, every entry occupies the same quantum-rounded slot so
/// entry sizes cannot single out the real probe.
struct ProbeBatchResponseMsg {
  std::vector<QueryResponseMsg> answers;
};
/// `answers[i]` is the EncodeQueryResponse bytes for probe i.
Bytes EncodeProbeBatchResponse(const std::vector<Bytes>& answers, bool pad);
Result<ProbeBatchResponseMsg> DecodeProbeBatchResponse(const Bytes& payload);

/// kPirSetupRequest: names a hosted section (privacy::kBlockMetaSection or
/// privacy::OpessRootSection). Answered with the section's parameters and
/// hint, after which the client can fetch records by selection vector.
struct PirSetupRequestMsg {
  std::string db;
  std::string section;
};
Bytes EncodePirSetupRequest(const PirSetupRequestMsg& msg);
Result<PirSetupRequestMsg> DecodePirSetupRequest(const Bytes& payload);

struct PirSetupResponseMsg {
  privacy::PirParams params;
  std::vector<uint32_t> hint;  ///< record_bytes × dim, row-major
};
Bytes EncodePirSetupResponse(const PirSetupResponseMsg& msg);
Result<PirSetupResponseMsg> DecodePirSetupResponse(const Bytes& payload);

/// kPirFetchRequest: one selection vector (num_records u32s — LWE
/// ciphertext or transparent selector; the server cannot tell which and
/// performs the identical dot product either way).
struct PirFetchRequestMsg {
  std::string db;
  std::string section;
  std::vector<uint32_t> query;
};
Bytes EncodePirFetchRequest(const PirFetchRequestMsg& msg);
Result<PirFetchRequestMsg> DecodePirFetchRequest(const Bytes& payload);

struct PirFetchResponseMsg {
  std::vector<uint32_t> answer;  ///< record_bytes u32s
};
Bytes EncodePirFetchResponse(const PirFetchResponseMsg& msg);
Result<PirFetchResponseMsg> DecodePirFetchResponse(const Bytes& payload);

/// kError carries a non-OK Status across the wire. Decoding never returns
/// OK: a well-formed payload yields the carried error, a malformed one
/// yields Corruption. Since v4 the frame also carries `retry_after_ms`, a
/// server-suggested backoff hint (0 = no suggestion) that admission
/// control attaches to Unavailable sheds and the client's retry loop
/// honors as a floor.
Bytes EncodeError(const Status& status, double retry_after_ms = 0.0,
                  uint8_t version = kWireVersion);
Status DecodeError(const Bytes& payload, uint8_t version = kWireVersion,
                   double* retry_after_ms = nullptr);

}  // namespace net
}  // namespace xcrypt

#endif  // XCRYPT_NET_WIRE_H_
