#include "net/wire.h"

#include <algorithm>

#include "common/binary_io.h"
#include "privacy/padding.h"

namespace xcrypt {
namespace net {

namespace {

/// Translated queries nest (a predicate's relative path carries its own
/// predicates). Genuine queries are a handful of levels deep; a frame
/// claiming more is hostile or corrupted, and the bound keeps the
/// recursive decoder's stack usage trivially small.
constexpr int kMaxPredicateDepth = 64;

// Minimum encoded sizes, used to sanity-check element counts against the
// bytes actually remaining before reserving anything.
constexpr uint64_t kMinStepBytes = 1 + 1 + 4 + 4;  // axis, wildcard, counts
constexpr uint64_t kMinPredicateBytes = 1 + 4 + 1 + 4 + 4 + 8 + 8 + 1;
constexpr uint64_t kMinBlockBytes = 4 + 4 + 4;   // id, generation, ct length
constexpr uint64_t kMinAdvertBytes = 4 + 4;      // id + generation
constexpr uint64_t kMinPhaseBytes = 4 + 8;       // name length + f64
constexpr uint64_t kMinHistogramBytes = 4 + 8 + 8 + 4;  // name, count, sum, n

void WriteSteps(BinaryWriter& w, const std::vector<TranslatedStep>& steps);

void WritePredicate(BinaryWriter& w, const TranslatedPredicate& pred) {
  w.U8(static_cast<uint8_t>(pred.kind));
  WriteSteps(w, pred.path);
  w.U8(static_cast<uint8_t>(pred.op));
  w.Str(pred.literal);
  w.Str(pred.index_token);
  w.I64(pred.range.lo);
  w.I64(pred.range.hi);
  w.U8(pred.range.empty ? 1 : 0);
}

void WriteSteps(BinaryWriter& w, const std::vector<TranslatedStep>& steps) {
  w.U32(static_cast<uint32_t>(steps.size()));
  for (const TranslatedStep& step : steps) {
    w.U8(static_cast<uint8_t>(step.axis));
    w.U8(step.wildcard ? 1 : 0);
    w.U32(static_cast<uint32_t>(step.tokens.size()));
    for (const std::string& token : step.tokens) w.Str(token);
    w.U32(static_cast<uint32_t>(step.predicates.size()));
    for (const TranslatedPredicate& pred : step.predicates) {
      WritePredicate(w, pred);
    }
  }
}

Status ReadSteps(BinaryReader& r, std::vector<TranslatedStep>* out, int depth);

Status ReadPredicate(BinaryReader& r, TranslatedPredicate* pred, int depth) {
  const uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(TranslatedPredicate::Kind::kIndexRange)) {
    return Status::Corruption("bad predicate kind");
  }
  pred->kind = static_cast<TranslatedPredicate::Kind>(kind);
  XCRYPT_RETURN_NOT_OK(ReadSteps(r, &pred->path, depth + 1));
  const uint8_t op = r.U8();
  if (op > static_cast<uint8_t>(CompOp::kGe)) {
    return Status::Corruption("bad comparison operator");
  }
  pred->op = static_cast<CompOp>(op);
  pred->literal = r.Str();
  pred->index_token = r.Str();
  pred->range.lo = r.I64();
  pred->range.hi = r.I64();
  pred->range.empty = r.U8() != 0;
  if (r.failed()) return Status::Corruption("truncated predicate");
  return Status::Ok();
}

Status ReadSteps(BinaryReader& r, std::vector<TranslatedStep>* out,
                 int depth) {
  if (depth > kMaxPredicateDepth) {
    return Status::Corruption("predicate nesting too deep");
  }
  const uint32_t num_steps = r.U32();
  if (!r.CanHold(num_steps, kMinStepBytes)) {
    return Status::Corruption("bad step count");
  }
  out->reserve(num_steps);
  for (uint32_t i = 0; i < num_steps; ++i) {
    TranslatedStep step;
    const uint8_t axis = r.U8();
    if (axis > static_cast<uint8_t>(Axis::kDescendant)) {
      return Status::Corruption("bad axis");
    }
    step.axis = static_cast<Axis>(axis);
    step.wildcard = r.U8() != 0;
    const uint32_t num_tokens = r.U32();
    if (!r.CanHold(num_tokens, 4)) {
      return Status::Corruption("bad token count");
    }
    step.tokens.reserve(num_tokens);
    for (uint32_t j = 0; j < num_tokens; ++j) step.tokens.push_back(r.Str());
    const uint32_t num_preds = r.U32();
    if (!r.CanHold(num_preds, kMinPredicateBytes)) {
      return Status::Corruption("bad predicate count");
    }
    step.predicates.reserve(num_preds);
    for (uint32_t j = 0; j < num_preds; ++j) {
      TranslatedPredicate pred;
      XCRYPT_RETURN_NOT_OK(ReadPredicate(r, &pred, depth));
      step.predicates.push_back(std::move(pred));
    }
    if (r.failed()) return Status::Corruption("truncated step");
    out->push_back(std::move(step));
  }
  return Status::Ok();
}

/// Ciphertexts at or above this size are detached into their own writev
/// segment when encoding response parts; smaller ones are cheaper to copy
/// into the glue buffer than to scatter (one iovec entry each).
constexpr size_t kDetachCiphertextBytes = 1024;

/// Accumulates scatter-gather payload segments: small fields append to a
/// glue buffer; Detach() seals the glue and adopts a large buffer (a block
/// ciphertext) as its own segment without copying it.
class PartsWriter {
 public:
  explicit PartsWriter(std::vector<Bytes>* parts)
      : parts_(parts), writer_(&glue_) {}

  BinaryWriter& writer() { return writer_; }

  void Detach(Bytes&& segment) {
    Flush();
    parts_->push_back(std::move(segment));
  }

  void Flush() {
    if (!glue_.empty()) {
      parts_->push_back(std::move(glue_));
      glue_.clear();  // moved-from; reset so the writer keeps appending
    }
  }

 private:
  std::vector<Bytes>* parts_;
  Bytes glue_;
  BinaryWriter writer_;
};

void WriteServerResponse(BinaryWriter& w, const ServerResponse& response) {
  w.Str(response.skeleton_xml);
  w.U32(static_cast<uint32_t>(response.blocks.size()));
  for (const EncryptedBlock& block : response.blocks) {
    w.I32(block.id);
    w.U32(block.generation);
    w.Blob(block.ciphertext);
    // plaintext_bytes is client-only knowledge and never crosses the wire.
  }
  w.U32(static_cast<uint32_t>(response.cached_ids.size()));
  for (int id : response.cached_ids) w.I32(id);
  w.U8(response.requires_full_requery ? 1 : 0);
}

/// Segment-producing twin of WriteServerResponse: byte-identical when the
/// segments are concatenated, but large ciphertexts are moved out of
/// `response` into their own segments (the u32 length prefix stays in the
/// preceding glue).
void WriteServerResponseParts(PartsWriter& pw, ServerResponse&& response) {
  BinaryWriter& w = pw.writer();
  w.Str(response.skeleton_xml);
  w.U32(static_cast<uint32_t>(response.blocks.size()));
  for (EncryptedBlock& block : response.blocks) {
    w.I32(block.id);
    w.U32(block.generation);
    if (block.ciphertext.size() >= kDetachCiphertextBytes) {
      w.U32(static_cast<uint32_t>(block.ciphertext.size()));
      pw.Detach(std::move(block.ciphertext));
    } else {
      w.Blob(block.ciphertext);
    }
  }
  w.U32(static_cast<uint32_t>(response.cached_ids.size()));
  for (int id : response.cached_ids) w.I32(id);
  w.U8(response.requires_full_requery ? 1 : 0);
}

Status ReadServerResponse(BinaryReader& r, ServerResponse* out) {
  out->skeleton_xml = r.Str();
  const uint32_t num_blocks = r.U32();
  if (!r.CanHold(num_blocks, kMinBlockBytes)) {
    return Status::Corruption("bad block count");
  }
  out->blocks.reserve(num_blocks);
  for (uint32_t i = 0; i < num_blocks; ++i) {
    EncryptedBlock block;
    block.id = r.I32();
    block.generation = r.U32();
    block.ciphertext = r.Blob();
    if (r.failed()) return Status::Corruption("truncated block");
    out->blocks.push_back(std::move(block));
  }
  const uint32_t num_cached = r.U32();
  if (!r.CanHold(num_cached, 4)) {
    return Status::Corruption("bad cached-id count");
  }
  out->cached_ids.reserve(num_cached);
  for (uint32_t i = 0; i < num_cached; ++i) out->cached_ids.push_back(r.I32());
  out->requires_full_requery = r.U8() != 0;
  if (r.failed()) return Status::Corruption("truncated server response");
  return Status::Ok();
}

void WriteAdverts(BinaryWriter& w, const std::vector<BlockAdvert>& adverts) {
  w.U32(static_cast<uint32_t>(adverts.size()));
  for (const BlockAdvert& advert : adverts) {
    w.I32(advert.id);
    w.U32(advert.generation);
  }
}

Status ReadAdverts(BinaryReader& r, std::vector<BlockAdvert>* out) {
  const uint32_t num_adverts = r.U32();
  if (!r.CanHold(num_adverts, kMinAdvertBytes)) {
    return Status::Corruption("bad advert count");
  }
  out->reserve(num_adverts);
  for (uint32_t i = 0; i < num_adverts; ++i) {
    BlockAdvert advert;
    advert.id = r.I32();
    advert.generation = r.U32();
    if (r.failed()) return Status::Corruption("truncated advert");
    out->push_back(advert);
  }
  return Status::Ok();
}

void WritePhases(BinaryWriter& w,
                 const std::vector<obs::PhaseTiming>& phases) {
  w.U32(static_cast<uint32_t>(phases.size()));
  for (const obs::PhaseTiming& phase : phases) {
    w.Str(phase.name);
    w.F64(phase.elapsed_us);
  }
}

Status ReadPhases(BinaryReader& r, std::vector<obs::PhaseTiming>* out) {
  const uint32_t num_phases = r.U32();
  if (!r.CanHold(num_phases, kMinPhaseBytes)) {
    return Status::Corruption("bad phase count");
  }
  out->reserve(num_phases);
  for (uint32_t i = 0; i < num_phases; ++i) {
    obs::PhaseTiming phase;
    phase.name = r.Str();
    phase.elapsed_us = r.F64();
    if (r.failed()) return Status::Corruption("truncated phase timing");
    out->push_back(std::move(phase));
  }
  return Status::Ok();
}

void WriteHistograms(
    BinaryWriter& w,
    const std::vector<std::pair<std::string, obs::HistogramSnapshot>>& hists) {
  w.U32(static_cast<uint32_t>(hists.size()));
  for (const auto& [name, hist] : hists) {
    w.Str(name);
    w.U64(hist.count);
    w.U64(hist.sum_us);
    // Trailing all-zero buckets are elided: most latency distributions
    // occupy a handful of low buckets.
    int last = obs::HistogramSnapshot::kNumBuckets - 1;
    while (last >= 0 && hist.buckets[last] == 0) --last;
    w.U32(static_cast<uint32_t>(last + 1));
    for (int i = 0; i <= last; ++i) w.U64(hist.buckets[i]);
  }
}

Status ReadHistograms(
    BinaryReader& r,
    std::vector<std::pair<std::string, obs::HistogramSnapshot>>* out) {
  const uint32_t num_hists = r.U32();
  if (!r.CanHold(num_hists, kMinHistogramBytes)) {
    return Status::Corruption("bad histogram count");
  }
  out->reserve(num_hists);
  for (uint32_t i = 0; i < num_hists; ++i) {
    std::string name = r.Str();
    obs::HistogramSnapshot hist;
    hist.count = r.U64();
    hist.sum_us = r.U64();
    const uint32_t num_buckets = r.U32();
    if (num_buckets > obs::HistogramSnapshot::kNumBuckets) {
      return Status::Corruption("bad bucket count");
    }
    if (!r.CanHold(num_buckets, 8)) {
      return Status::Corruption("truncated histogram buckets");
    }
    for (uint32_t b = 0; b < num_buckets; ++b) hist.buckets[b] = r.U64();
    if (r.failed()) return Status::Corruption("truncated histogram");
    out->emplace_back(std::move(name), hist);
  }
  return Status::Ok();
}

Status CheckFullyConsumed(const BinaryReader& r, const char* what) {
  if (r.failed()) {
    return Status::Corruption(std::string("truncated ") + what);
  }
  if (!r.AtEnd()) {
    return Status::Corruption(std::string("trailing bytes in ") + what);
  }
  return Status::Ok();
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest:
      return "PingRequest";
    case MessageType::kPingResponse:
      return "PingResponse";
    case MessageType::kQueryRequest:
      return "QueryRequest";
    case MessageType::kQueryResponse:
      return "QueryResponse";
    case MessageType::kNaiveRequest:
      return "NaiveRequest";
    case MessageType::kAggregateRequest:
      return "AggregateRequest";
    case MessageType::kAggregateResponse:
      return "AggregateResponse";
    case MessageType::kStatsRequest:
      return "StatsRequest";
    case MessageType::kStatsResponse:
      return "StatsResponse";
    case MessageType::kError:
      return "Error";
    case MessageType::kInvalidationEvent:
      return "InvalidationEvent";
    case MessageType::kUpdateRequest:
      return "UpdateRequest";
    case MessageType::kUpdateResponse:
      return "UpdateResponse";
    case MessageType::kProbeBatchRequest:
      return "ProbeBatchRequest";
    case MessageType::kProbeBatchResponse:
      return "ProbeBatchResponse";
    case MessageType::kPirSetupRequest:
      return "PirSetupRequest";
    case MessageType::kPirSetupResponse:
      return "PirSetupResponse";
    case MessageType::kPirFetchRequest:
      return "PirFetchRequest";
    case MessageType::kPirFetchResponse:
      return "PirFetchResponse";
  }
  return "Unknown";
}

Bytes EncodeFrame(MessageType type, const Bytes& payload, uint8_t version,
                  uint64_t frame_id) {
  Bytes out;
  out.reserve(FrameHeaderBytes(version) + payload.size());
  BinaryWriter w(&out);
  w.U32(kWireMagic);
  w.U8(version);
  w.U8(static_cast<uint8_t>(type));
  w.U32(static_cast<uint32_t>(payload.size()));
  if (version >= 6) w.U64(frame_id);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Frame> DecodeFrameHeader(const uint8_t* buf, uint64_t max_frame_bytes,
                                uint32_t* payload_length) {
  Bytes header(buf, buf + kFrameHeaderBytes);
  BinaryReader r(header);
  if (r.U32() != kWireMagic) return Status::Corruption("bad frame magic");
  const uint8_t version = r.U8();
  if (version < kMinWireVersion || version > kWireVersion) {
    return Status::Unsupported("wire version " + std::to_string(version));
  }
  const uint8_t type = r.U8();
  if (type < static_cast<uint8_t>(MessageType::kPingRequest) ||
      type > static_cast<uint8_t>(MessageType::kPirFetchResponse)) {
    return Status::Corruption("bad message type " + std::to_string(type));
  }
  if (type > static_cast<uint8_t>(MessageType::kError) && version < 5) {
    // The update/invalidation messages only exist at v5; an older session
    // producing them is confused or hostile.
    return Status::Corruption("message type " + std::to_string(type) +
                              " requires wire version 5");
  }
  if (type > static_cast<uint8_t>(MessageType::kUpdateResponse) &&
      version < 7) {
    // Probe batches and PIR fetches only exist at v7.
    return Status::Corruption("message type " + std::to_string(type) +
                              " requires wire version 7");
  }
  const uint32_t length = r.U32();
  if (length > max_frame_bytes) {
    return Status::Corruption("frame of " + std::to_string(length) +
                              " bytes exceeds limit of " +
                              std::to_string(max_frame_bytes));
  }
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.version = version;
  *payload_length = length;
  return frame;
}

uint64_t DecodeFrameId(const uint8_t* buf) {
  uint64_t id = 0;
  for (size_t i = 0; i < kFrameIdBytes; ++i) {
    id |= static_cast<uint64_t>(buf[i]) << (8 * i);
  }
  return id;
}

Result<Frame> DecodeFrame(const Bytes& buf, uint64_t max_frame_bytes) {
  if (buf.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t payload_length = 0;
  auto frame = DecodeFrameHeader(buf.data(), max_frame_bytes, &payload_length);
  if (!frame.ok()) return frame.status();
  const size_t header_bytes = FrameHeaderBytes(frame->version);
  if (buf.size() < header_bytes) {
    return Status::Corruption("truncated frame id");
  }
  if (frame->version >= 6) {
    frame->frame_id = DecodeFrameId(buf.data() + kFrameHeaderBytes);
  }
  if (buf.size() - header_bytes != payload_length) {
    return Status::Corruption("frame length mismatch");
  }
  frame->payload.assign(buf.begin() + header_bytes, buf.end());
  return frame;
}

uint64_t FramePartsBytes(const FrameParts& parts) {
  uint64_t total = 0;
  for (const Bytes& part : parts) total += part.size();
  return total;
}

FrameParts EncodeFrameParts(MessageType type, std::vector<Bytes> payload,
                            uint8_t version, uint64_t frame_id) {
  uint64_t payload_bytes = 0;
  for (const Bytes& part : payload) payload_bytes += part.size();
  Bytes header;
  header.reserve(FrameHeaderBytes(version));
  BinaryWriter w(&header);
  w.U32(kWireMagic);
  w.U8(version);
  w.U8(static_cast<uint8_t>(type));
  w.U32(static_cast<uint32_t>(payload_bytes));
  if (version >= 6) w.U64(frame_id);
  FrameParts parts;
  parts.reserve(payload.size() + 1);
  parts.push_back(std::move(header));
  for (Bytes& part : payload) parts.push_back(std::move(part));
  return parts;
}

Bytes EncodeQueryRequest(const TranslatedQuery& query,
                         const std::vector<BlockAdvert>& cached,
                         const std::string& db, uint8_t version) {
  Bytes out;
  BinaryWriter w(&out);
  WriteSteps(w, query.steps);
  WriteAdverts(w, cached);
  // The db name rides at the tail so every v3 field keeps its offset; a
  // v3 session simply never writes (or reads) it.
  if (version >= 4) w.Str(db);
  return out;
}

Result<QueryRequestMsg> DecodeQueryRequest(const Bytes& payload,
                                           uint8_t version) {
  BinaryReader r(payload);
  QueryRequestMsg msg;
  XCRYPT_RETURN_NOT_OK(ReadSteps(r, &msg.query.steps, 0));
  XCRYPT_RETURN_NOT_OK(ReadAdverts(r, &msg.cached));
  if (version >= 4) msg.db = r.Str();
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "query request"));
  return msg;
}

Bytes EncodeNaiveRequest(const std::string& db, uint8_t version) {
  Bytes out;
  if (version >= 4) {
    BinaryWriter w(&out);
    w.Str(db);
  }
  return out;
}

Result<NaiveRequestMsg> DecodeNaiveRequest(const Bytes& payload,
                                           uint8_t version) {
  BinaryReader r(payload);
  NaiveRequestMsg msg;
  if (version >= 4) msg.db = r.Str();
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "naive request"));
  return msg;
}

Bytes EncodeStatsRequest(const std::string& db, uint8_t version) {
  Bytes out;
  if (version >= 4) {
    BinaryWriter w(&out);
    w.Str(db);
  }
  return out;
}

Result<StatsRequestMsg> DecodeStatsRequest(const Bytes& payload,
                                           uint8_t version) {
  BinaryReader r(payload);
  StatsRequestMsg msg;
  if (version >= 4) msg.db = r.Str();
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "stats request"));
  return msg;
}

Bytes EncodeQueryResponse(const ServerResponse& response,
                          double server_process_us,
                          const std::vector<obs::PhaseTiming>& server_phases) {
  Bytes out;
  BinaryWriter w(&out);
  WriteServerResponse(w, response);
  w.F64(server_process_us);
  WritePhases(w, server_phases);
  return out;
}

std::vector<Bytes> EncodeQueryResponseParts(
    ServerResponse&& response, double server_process_us,
    const std::vector<obs::PhaseTiming>& server_phases) {
  std::vector<Bytes> parts;
  PartsWriter pw(&parts);
  WriteServerResponseParts(pw, std::move(response));
  pw.writer().F64(server_process_us);
  WritePhases(pw.writer(), server_phases);
  pw.Flush();
  return parts;
}

Result<QueryResponseMsg> DecodeQueryResponse(const Bytes& payload) {
  BinaryReader r(payload);
  QueryResponseMsg msg;
  XCRYPT_RETURN_NOT_OK(ReadServerResponse(r, &msg.response));
  msg.server_process_us = r.F64();
  XCRYPT_RETURN_NOT_OK(ReadPhases(r, &msg.server_phases));
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "query response"));
  return msg;
}

Bytes EncodeAggregateRequest(const TranslatedQuery& query, AggregateKind kind,
                             const std::string& index_token,
                             const std::vector<BlockAdvert>& cached,
                             const std::string& db, uint8_t version) {
  Bytes out;
  BinaryWriter w(&out);
  WriteSteps(w, query.steps);
  w.U8(static_cast<uint8_t>(kind));
  w.Str(index_token);
  WriteAdverts(w, cached);
  if (version >= 4) w.Str(db);
  return out;
}

Result<AggregateRequestMsg> DecodeAggregateRequest(const Bytes& payload,
                                                   uint8_t version) {
  BinaryReader r(payload);
  AggregateRequestMsg msg;
  XCRYPT_RETURN_NOT_OK(ReadSteps(r, &msg.query.steps, 0));
  const uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(AggregateKind::kSum)) {
    return Status::Corruption("bad aggregate kind");
  }
  msg.kind = static_cast<AggregateKind>(kind);
  msg.index_token = r.Str();
  XCRYPT_RETURN_NOT_OK(ReadAdverts(r, &msg.cached));
  if (version >= 4) msg.db = r.Str();
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "aggregate request"));
  return msg;
}

Bytes EncodeAggregateResponse(const AggregateResponse& response,
                              double server_process_us,
                              const std::vector<obs::PhaseTiming>&
                                  server_phases) {
  Bytes out;
  BinaryWriter w(&out);
  w.U8(static_cast<uint8_t>(response.kind));
  w.U8(response.computed_on_server ? 1 : 0);
  w.Str(response.server_value);
  WriteServerResponse(w, response.payload);
  w.F64(server_process_us);
  WritePhases(w, server_phases);
  return out;
}

std::vector<Bytes> EncodeAggregateResponseParts(
    AggregateResponse&& response, double server_process_us,
    const std::vector<obs::PhaseTiming>& server_phases) {
  std::vector<Bytes> parts;
  PartsWriter pw(&parts);
  BinaryWriter& w = pw.writer();
  w.U8(static_cast<uint8_t>(response.kind));
  w.U8(response.computed_on_server ? 1 : 0);
  w.Str(response.server_value);
  WriteServerResponseParts(pw, std::move(response.payload));
  pw.writer().F64(server_process_us);
  WritePhases(pw.writer(), server_phases);
  pw.Flush();
  return parts;
}

Result<AggregateResponseMsg> DecodeAggregateResponse(const Bytes& payload) {
  BinaryReader r(payload);
  AggregateResponseMsg msg;
  const uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(AggregateKind::kSum)) {
    return Status::Corruption("bad aggregate kind");
  }
  msg.response.kind = static_cast<AggregateKind>(kind);
  msg.response.computed_on_server = r.U8() != 0;
  msg.response.server_value = r.Str();
  XCRYPT_RETURN_NOT_OK(ReadServerResponse(r, &msg.response.payload));
  msg.server_process_us = r.F64();
  XCRYPT_RETURN_NOT_OK(ReadPhases(r, &msg.server_phases));
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "aggregate response"));
  return msg;
}

Bytes EncodeStats(const NetStats& stats, uint8_t version) {
  Bytes out;
  BinaryWriter w(&out);
  w.U64(stats.queries_served);
  w.U64(stats.aggregates_served);
  w.U64(stats.naive_served);
  w.U64(stats.errors);
  w.U64(stats.connections_total);
  w.U64(stats.connections_active);
  w.U64(stats.bytes_received);
  w.U64(stats.bytes_sent);
  w.U64(stats.num_blocks);
  w.U64(stats.ciphertext_bytes);
  WriteHistograms(w, stats.latency);
  if (version >= 4) {
    w.U64(stats.queries_shed);
    w.U64(stats.queue_depth);
    w.Str(stats.database);
  }
  if (version >= 5) {
    w.U64(stats.db_generation);
    w.U64(stats.updates_applied);
  }
  return out;
}

Result<NetStats> DecodeStats(const Bytes& payload, uint8_t version) {
  BinaryReader r(payload);
  NetStats stats;
  stats.queries_served = r.U64();
  stats.aggregates_served = r.U64();
  stats.naive_served = r.U64();
  stats.errors = r.U64();
  stats.connections_total = r.U64();
  stats.connections_active = r.U64();
  stats.bytes_received = r.U64();
  stats.bytes_sent = r.U64();
  stats.num_blocks = r.U64();
  stats.ciphertext_bytes = r.U64();
  XCRYPT_RETURN_NOT_OK(ReadHistograms(r, &stats.latency));
  if (version >= 4) {
    stats.queries_shed = r.U64();
    stats.queue_depth = r.U64();
    stats.database = r.Str();
  }
  if (version >= 5) {
    stats.db_generation = r.U64();
    stats.updates_applied = r.U64();
  }
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "stats"));
  return stats;
}

Bytes EncodeInvalidationEvent(const InvalidationEventMsg& event) {
  Bytes out;
  BinaryWriter w(&out);
  w.Str(event.db);
  w.U64(event.db_generation);
  w.U8(event.drop_all ? 1 : 0);
  WriteAdverts(w, event.blocks);
  return out;
}

Result<InvalidationEventMsg> DecodeInvalidationEvent(const Bytes& payload) {
  BinaryReader r(payload);
  InvalidationEventMsg event;
  event.db = r.Str();
  event.db_generation = r.U64();
  event.drop_all = r.U8() != 0;
  XCRYPT_RETURN_NOT_OK(ReadAdverts(r, &event.blocks));
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "invalidation event"));
  return event;
}

Bytes EncodeUpdateRequest(const UpdateRequestMsg& msg) {
  Bytes out;
  BinaryWriter w(&out);
  w.Str(msg.db);
  w.Blob(msg.delta);
  return out;
}

Result<UpdateRequestMsg> DecodeUpdateRequest(const Bytes& payload) {
  BinaryReader r(payload);
  UpdateRequestMsg msg;
  msg.db = r.Str();
  msg.delta = r.Blob();
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "update request"));
  return msg;
}

Bytes EncodeUpdateResponse(const UpdateResponseMsg& msg) {
  Bytes out;
  BinaryWriter w(&out);
  w.U64(msg.generation);
  return out;
}

Result<UpdateResponseMsg> DecodeUpdateResponse(const Bytes& payload) {
  BinaryReader r(payload);
  UpdateResponseMsg msg;
  msg.generation = r.U64();
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "update response"));
  return msg;
}

Bytes EncodeTranslatedQuery(const TranslatedQuery& query) {
  Bytes out;
  BinaryWriter w(&out);
  WriteSteps(w, query.steps);
  return out;
}

Result<TranslatedQuery> DecodeTranslatedQuery(const Bytes& payload) {
  BinaryReader r(payload);
  TranslatedQuery query;
  XCRYPT_RETURN_NOT_OK(ReadSteps(r, &query.steps, 0));
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "translated query"));
  return query;
}

namespace {

/// Writes `entries` into equal fixed-size slots: u32 actual length, the
/// bytes, zero fill up to the batch's quantum-rounded maximum. Identical
/// slot sizes are the whole point — an observer cannot rank entries by
/// length.
void WritePaddedEntries(BinaryWriter& w, const std::vector<Bytes>& entries) {
  size_t max_bytes = 0;
  for (const Bytes& e : entries) max_bytes = std::max(max_bytes, e.size());
  const size_t slot = privacy::PadToQuantum(max_bytes);
  w.U32(static_cast<uint32_t>(entries.size()));
  w.U32(static_cast<uint32_t>(slot));
  for (const Bytes& e : entries) {
    w.U32(static_cast<uint32_t>(e.size()));
    // BinaryWriter has no raw append; reuse the writer's buffer directly.
    for (uint8_t b : e) w.U8(b);
    for (size_t i = e.size(); i < slot; ++i) w.U8(0);
  }
}

/// Reads the slot header + each entry's actual bytes (pad skipped).
/// `max_entries` guards the count, `min_entry_bytes` the slot claim.
Status ReadPaddedEntries(BinaryReader& r, uint32_t max_entries,
                         std::vector<Bytes>* out) {
  const uint32_t count = r.U32();
  const uint32_t slot = r.U32();
  if (count == 0 || count > max_entries) {
    return Status::Corruption("bad padded entry count");
  }
  if (!r.CanHold(count, 4ull + slot)) {
    return Status::Corruption("padded entries exceed payload");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t actual = r.U32();
    if (actual > slot) {
      return Status::Corruption("padded entry longer than its slot");
    }
    Bytes body = r.Raw(actual);
    r.Skip(slot - actual);
    if (r.failed()) return Status::Corruption("truncated padded entry");
    out->push_back(std::move(body));
  }
  return Status::Ok();
}

}  // namespace

Bytes EncodeProbeBatchRequest(std::span<const TranslatedQuery> probes,
                              const std::vector<BlockAdvert>& cached,
                              const std::string& db, bool pad_responses) {
  Bytes out;
  BinaryWriter w(&out);
  w.Str(db);
  WriteAdverts(w, cached);
  w.U8(pad_responses ? 1 : 0);
  std::vector<Bytes> entries;
  entries.reserve(probes.size());
  for (const TranslatedQuery& probe : probes) {
    entries.push_back(EncodeTranslatedQuery(probe));
  }
  WritePaddedEntries(w, entries);
  return out;
}

Result<ProbeBatchRequestMsg> DecodeProbeBatchRequest(const Bytes& payload) {
  BinaryReader r(payload);
  ProbeBatchRequestMsg msg;
  msg.db = r.Str();
  XCRYPT_RETURN_NOT_OK(ReadAdverts(r, &msg.cached));
  msg.pad_responses = r.U8() != 0;
  if (r.failed()) return Status::Corruption("truncated probe batch header");
  std::vector<Bytes> entries;
  XCRYPT_RETURN_NOT_OK(
      ReadPaddedEntries(r, PrivacyOptions::kMaxDecoys + 1, &entries));
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "probe batch request"));
  msg.probes.reserve(entries.size());
  for (const Bytes& entry : entries) {
    auto query = DecodeTranslatedQuery(entry);
    if (!query.ok()) return query.status();
    msg.probes.push_back(std::move(*query));
  }
  return msg;
}

Bytes EncodeProbeBatchResponse(const std::vector<Bytes>& answers, bool pad) {
  Bytes out;
  BinaryWriter w(&out);
  w.U8(pad ? 1 : 0);
  if (pad) {
    WritePaddedEntries(w, answers);
  } else {
    w.U32(static_cast<uint32_t>(answers.size()));
    for (const Bytes& answer : answers) w.Blob(answer);
  }
  return out;
}

Result<ProbeBatchResponseMsg> DecodeProbeBatchResponse(const Bytes& payload) {
  BinaryReader r(payload);
  const bool padded = r.U8() != 0;
  std::vector<Bytes> entries;
  if (padded) {
    XCRYPT_RETURN_NOT_OK(
        ReadPaddedEntries(r, PrivacyOptions::kMaxDecoys + 1, &entries));
  } else {
    const uint32_t count = r.U32();
    if (count == 0 ||
        count > static_cast<uint32_t>(PrivacyOptions::kMaxDecoys) + 1) {
      return Status::Corruption("bad probe batch answer count");
    }
    if (!r.CanHold(count, 4)) {
      return Status::Corruption("probe batch answers exceed payload");
    }
    entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      entries.push_back(r.Blob());
      if (r.failed()) return Status::Corruption("truncated batch answer");
    }
  }
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "probe batch response"));
  ProbeBatchResponseMsg msg;
  msg.answers.reserve(entries.size());
  for (const Bytes& entry : entries) {
    auto answer = DecodeQueryResponse(entry);
    if (!answer.ok()) return answer.status();
    msg.answers.push_back(std::move(*answer));
  }
  return msg;
}

Bytes EncodePirSetupRequest(const PirSetupRequestMsg& msg) {
  Bytes out;
  BinaryWriter w(&out);
  w.Str(msg.db);
  w.Str(msg.section);
  return out;
}

Result<PirSetupRequestMsg> DecodePirSetupRequest(const Bytes& payload) {
  BinaryReader r(payload);
  PirSetupRequestMsg msg;
  msg.db = r.Str();
  msg.section = r.Str();
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "pir setup request"));
  return msg;
}

Bytes EncodePirSetupResponse(const PirSetupResponseMsg& msg) {
  Bytes out;
  BinaryWriter w(&out);
  w.U32(msg.params.num_records);
  w.U32(msg.params.record_bytes);
  w.U32(msg.params.dim);
  w.U64(msg.params.seed);
  w.U32(static_cast<uint32_t>(msg.hint.size()));
  for (uint32_t v : msg.hint) w.U32(v);
  return out;
}

Result<PirSetupResponseMsg> DecodePirSetupResponse(const Bytes& payload) {
  BinaryReader r(payload);
  PirSetupResponseMsg msg;
  msg.params.num_records = r.U32();
  msg.params.record_bytes = r.U32();
  msg.params.dim = r.U32();
  msg.params.seed = r.U64();
  XCRYPT_RETURN_NOT_OK(msg.params.Validate());
  const uint32_t hint_len = r.U32();
  if (hint_len != static_cast<uint64_t>(msg.params.record_bytes) *
                      msg.params.dim ||
      !r.CanHold(hint_len, 4)) {
    return Status::Corruption("bad pir hint length");
  }
  msg.hint.reserve(hint_len);
  for (uint32_t i = 0; i < hint_len; ++i) msg.hint.push_back(r.U32());
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "pir setup response"));
  return msg;
}

Bytes EncodePirFetchRequest(const PirFetchRequestMsg& msg) {
  Bytes out;
  BinaryWriter w(&out);
  w.Str(msg.db);
  w.Str(msg.section);
  w.U32(static_cast<uint32_t>(msg.query.size()));
  for (uint32_t v : msg.query) w.U32(v);
  return out;
}

Result<PirFetchRequestMsg> DecodePirFetchRequest(const Bytes& payload) {
  BinaryReader r(payload);
  PirFetchRequestMsg msg;
  msg.db = r.Str();
  msg.section = r.Str();
  const uint32_t query_len = r.U32();
  if (query_len == 0 || query_len > privacy::PirParams::kMaxRecords ||
      !r.CanHold(query_len, 4)) {
    return Status::Corruption("bad pir query length");
  }
  msg.query.reserve(query_len);
  for (uint32_t i = 0; i < query_len; ++i) msg.query.push_back(r.U32());
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "pir fetch request"));
  return msg;
}

Bytes EncodePirFetchResponse(const PirFetchResponseMsg& msg) {
  Bytes out;
  BinaryWriter w(&out);
  w.U32(static_cast<uint32_t>(msg.answer.size()));
  for (uint32_t v : msg.answer) w.U32(v);
  return out;
}

Result<PirFetchResponseMsg> DecodePirFetchResponse(const Bytes& payload) {
  BinaryReader r(payload);
  const uint32_t answer_len = r.U32();
  if (answer_len == 0 || answer_len > privacy::PirParams::kMaxRecordBytes ||
      !r.CanHold(answer_len, 4)) {
    return Status::Corruption("bad pir answer length");
  }
  PirFetchResponseMsg msg;
  msg.answer.reserve(answer_len);
  for (uint32_t i = 0; i < answer_len; ++i) msg.answer.push_back(r.U32());
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "pir fetch response"));
  return msg;
}

Bytes EncodeError(const Status& status, double retry_after_ms,
                  uint8_t version) {
  Bytes out;
  BinaryWriter w(&out);
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  if (version >= 4) w.F64(retry_after_ms);
  return out;
}

Status DecodeError(const Bytes& payload, uint8_t version,
                   double* retry_after_ms) {
  BinaryReader r(payload);
  const uint8_t code = r.U8();
  const std::string message = r.Str();
  if (retry_after_ms != nullptr) *retry_after_ms = 0.0;
  if (version >= 4) {
    const double hint = r.F64();
    // Reject NaN/negative hints from a hostile daemon; a client must
    // never be talked into sleeping forever (or not at all, in a loop).
    if (retry_after_ms != nullptr && hint > 0.0 && hint == hint) {
      *retry_after_ms = hint;
    }
  }
  XCRYPT_RETURN_NOT_OK(CheckFullyConsumed(r, "error message"));
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      // An error frame must carry an error; an OK code is a protocol bug.
      return Status::Corruption("error frame with OK status");
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kParseError:
      return Status::ParseError(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kUnsupported:
      return Status::Unsupported(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
  }
  return Status::Corruption("bad status code in error frame");
}

}  // namespace net
}  // namespace xcrypt
